"""Full-stack Open-MX scenarios sharded under the conservative PDES
coordinator.

``pdes_soak`` (:mod:`repro.sim.pdes`) proved the coordinator on abstract
fabric-level hosts; this module puts the **whole Open-MX stack** — kernel,
MMU notifiers, pin service, driver, rndv/eager protocol, softirq engine,
NIC — on it.  Each shard builds a genuine sub-cluster
(:func:`repro.cluster.builder.build_cluster` with a ``shard_plan``): only
its slice of the global host set is constructed, with global names, wired
to a :class:`~repro.cluster.network.ShardEtherFabric` that delivers
shard-local Ethernet frames itself and marshals cross-shard frames —
eager frags, rndv, pull req/reply, notify, liback, the real wire packets —
through the coordinator's barrier exchange.

Determinism.  The byte-identity argument is the PR 8 one, restated for a
full stack:

* hosts share **no state** but the fabric — every kernel, pin service,
  address space, driver and endpoint is per-host, and the protocol has no
  global RNG (retransmit jitter is a pure keyed hash,
  ``OpenMXConfig.resend_delay_ns``) — so a host's event subsequence is
  invariant to which other hosts are co-resident in its environment;
* the only inter-host interaction point is frame delivery, and
  ``ShardEtherFabric`` batches it per ``(arrival, dst host)`` sorted by
  the canonical ``(src host, NIC tx seq, copy)`` key — the NIC's TX
  sequence is stamped by the *source host's* own pump, so the key is
  shard-independent;
* faults are pure :class:`~repro.sim.pdes.SeededFaultPlan` verdicts on
  that same key.

The per-host workload (:class:`OpenmxHost`) replays a pure-RNG schedule of
mixed eager/rendezvous sends with a bounded in-flight window, alternating
reused buffers (region-cache hits) with fresh malloc/free pairs (MMU
notifier invalidations), under a deliberately tight pin budget — the pin
pressure the paper cares about.  Receivers pre-post wildcard receives for
the exact message count the schedule implies (computable upfront because
the schedule is pure), progress until everything terminal or a deadline,
then cancel the stragglers — so faulted runs terminate deterministically
too.
"""

from __future__ import annotations

import hashlib
import random
import time as _time
from dataclasses import dataclass

from repro.cluster.builder import (
    Cluster,
    ShardPlan,
    build_cluster,
    nic_address,
    partition_hosts,
)
from repro.obs.metrics import MetricRegistry
from repro.openmx.config import OpenMXConfig, PinningMode
from repro.sim.engine import Environment
from repro.sim.pdes import (
    SeededFaultPlan,
    _mix,
    host_core_count,
    run_partitioned,
)
from repro.util.units import MIB

__all__ = [
    "OpenmxHost",
    "OpenmxParams",
    "OpenmxShard",
    "expected_count",
    "make_plan",
    "openmx_params",
    "openmx_sim_state",
    "run_openmx",
    "run_openmx_ab",
    "schedule",
    "traffic_matrix",
]


@dataclass(frozen=True)
class OpenmxParams:
    """Shape of the ``openmx_shard`` scenario.  Frozen and picklable: the
    factory ships one copy to every forked shard worker."""

    nhosts: int = 16
    rounds: int = 12
    seed: int = 2009
    latency_ns: int = 20_000
    min_gap_ns: int = 2_000
    max_gap_ns: int = 150_000
    # Mixed traffic: the first sizes ride the eager path (<= eager_max),
    # the last ones rendezvous/pull.  Sent size is drawn uniformly.
    sizes: tuple[int, ...] = (512, 8_192, 24_576, 49_152, 114_688)
    window: int = 3  # max in-flight sends per host (pin pressure knob)
    deadline_ns: int = 80_000_000  # receiver give-up for fault-dropped msgs
    # Tight pin budget: a fraction of host memory far below what the
    # in-flight regions want, so the pin service actually queues/falls
    # back — the contended-resource regime the paper studies.
    memory_bytes: int = 64 * MIB
    pin_fraction: float = 0.01
    pinning_mode: PinningMode = PinningMode.OVERLAP_CACHE
    region_cache_capacity: int = 4
    resend_timeout_ns: int = 2_000_000  # 2 ms bounds chaos recovery time
    max_resend_rounds: int = 4
    fault: SeededFaultPlan | None = None

    def __post_init__(self) -> None:
        if self.nhosts < 2:
            raise ValueError("openmx_shard needs at least 2 hosts")
        if self.latency_ns <= 0:
            raise ValueError("latency_ns must be positive")
        if not 0 < self.min_gap_ns < self.max_gap_ns:
            raise ValueError("need 0 < min_gap_ns < max_gap_ns")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.fault is not None:
            if self.fault.max_extra_delay_ns >= self.deadline_ns:
                raise ValueError("fault delays exceed the receive deadline")

    def config(self) -> OpenMXConfig:
        return OpenMXConfig(
            pinning_mode=self.pinning_mode,
            region_cache_capacity=self.region_cache_capacity,
            resend_timeout_ns=self.resend_timeout_ns,
            max_resend_rounds=self.max_resend_rounds,
        )


def schedule(params: OpenmxParams,
             host: int) -> tuple[tuple[int, int, int], ...]:
    """Host ``host``'s send schedule: ``(gap_ns, peer, size)`` per round.

    A pure function of ``(params.seed, host)`` — every shard (and the
    coordinator, and the affinity partitioner) can replay any host's
    schedule without simulating anything.
    """
    rng = random.Random(_mix(params.seed * 0x51ED + host))
    rounds = []
    for _ in range(params.rounds):
        gap = rng.randrange(params.min_gap_ns, params.max_gap_ns)
        peer = rng.randrange(params.nhosts - 1)
        if peer >= host:
            peer += 1
        size = params.sizes[rng.randrange(len(params.sizes))]
        rounds.append((gap, peer, size))
    return tuple(rounds)


def expected_count(params: OpenmxParams, host: int) -> int:
    """How many messages the schedule aims at ``host`` (pre-post count)."""
    return sum(1
               for src in range(params.nhosts) if src != host
               for _gap, peer, _size in schedule(params, src) if peer == host)


def traffic_matrix(params: OpenmxParams) -> dict[tuple[int, int], float]:
    """Bytes sent per (src, dst) pair — the affinity partitioner's input."""
    traffic: dict[tuple[int, int], float] = {}
    for src in range(params.nhosts):
        for _gap, peer, size in schedule(params, src):
            key = (src, peer)
            traffic[key] = traffic.get(key, 0.0) + size
    return traffic


def _payload(src: int, rnd: int, size: int) -> bytes:
    """Deterministic message body tagging sender and round."""
    stamp = f"omx:{src}:{rnd}:".encode()
    unit = stamp + bytes(
        (_mix(src * 0x7FF1 + rnd * 0x65 + i) & 0xFF) for i in range(24))
    return (unit * (size // len(unit) + 1))[:size]


class OpenmxHost:
    """One host's application: a sender replaying its schedule and a
    receiver pre-posting wildcard receives for the expected count."""

    def __init__(self, cluster: Cluster, host_id: int, params: OpenmxParams,
                 expected: int):
        self.id = host_id
        self.params = params
        self.env: Environment = cluster.env
        node = cluster.node(host_id)
        self.node = node
        self.lib = node.libs[0]
        self.proc = node.procs[0]
        self.expected = expected
        self.maxsz = max(params.sizes)
        self.rbufs = [self.proc.malloc(self.maxsz) for _ in range(expected)]
        self.rreqs: list = []
        self.send_statuses: list[str] = []
        self.done_ns: int | None = None
        self.env.process(self._main(), name=f"omx-host{host_id}")

    # -- processes ---------------------------------------------------------
    def _main(self):
        sender = self.env.process(self._sender(),
                                  name=f"omx-host{self.id}-send")
        receiver = self.env.process(self._receiver(),
                                    name=f"omx-host{self.id}-recv")
        yield self.env.all_of([sender, receiver])
        # One last drain picks up any already-queued terminal events (late
        # eager failures) before teardown; stragglers arriving after this
        # instant are dropped identically at every shard count.
        yield from self.lib.progress()
        yield from self.lib.close()
        self.done_ns = self.env.now

    def _sender(self):
        p = self.params
        pool: dict[int, int] = {}  # size -> reused buffer (cache hits)
        inflight: list[tuple] = []

        def reap(entry):
            rnd, req, fresh_va = entry
            status = yield from self.lib.wait(req)
            self.send_statuses[rnd] = status
            if fresh_va is not None:
                # Free the one-shot buffer: unmap fires the MMU notifier,
                # invalidating (and unpinning) whatever region covered it.
                self.proc.free(fresh_va)

        self.send_statuses = ["unsent"] * p.rounds
        for rnd, (gap, peer, size) in enumerate(schedule(p, self.id)):
            yield self.env.timeout(gap)
            if rnd % 2:
                va = self.proc.malloc(size)
                fresh_va = va
            else:
                va = pool.get(size)
                if va is None:
                    pool[size] = va = self.proc.malloc(size)
                fresh_va = None
            self.proc.write(va, _payload(self.id, rnd, size))
            req = yield from self.lib.isend(
                va, size, nic_address(peer), 0,
                match_info=(self.id << 20) | rnd, blocking=False)
            inflight.append((rnd, req, fresh_va))
            if len(inflight) >= p.window:
                yield from reap(inflight.pop(0))
        while inflight:
            yield from reap(inflight.pop(0))

    def _receiver(self):
        lib = self.lib
        p = self.params
        reqs = []
        for i in range(self.expected):
            req = yield from lib.irecv(self.rbufs[i], self.maxsz,
                                       match_info=0, match_mask=0)
            reqs.append(req)
        self.rreqs = reqs
        while not all(r.done for r in reqs):
            if self.env.now >= p.deadline_ns:
                # Cancel receives that never matched (their message was
                # fault-dropped and the sender gave up).  Matched-but-
                # incomplete transfers cannot be cancelled — the pull
                # path's bounded give-up timer drives them terminal, so
                # keep progressing until it does.
                for r in reqs:
                    if not r.done:
                        lib.cancel(r)
                if all(r.done for r in reqs):
                    break
            yield from lib.wait_step()
            yield from lib.progress()

    # -- end state ---------------------------------------------------------
    def state(self) -> dict:
        digest = hashlib.sha256()
        for rnd, status in enumerate(self.send_statuses):
            digest.update(f"s:{rnd}:{status}\n".encode())
        for i, req in enumerate(self.rreqs):
            digest.update(f"r:{i}:{req.status}:{req.received_length}\n"
                          .encode())
            if req.status == "ok" and req.received_length:
                digest.update(self.proc.read(self.rbufs[i],
                                             req.received_length))
        nic = self.node.host.nic
        return {
            "id": self.id,
            "done_ns": self.done_ns,
            "sends_ok": sum(1 for s in self.send_statuses if s == "ok"),
            "recvs_ok": sum(1 for r in self.rreqs if r.status == "ok"),
            "recvs_cancelled": sum(1 for r in self.rreqs
                                   if r.status == "cancelled"),
            "expected": self.expected,
            "nic_tx_frames": nic.tx_frames,
            "nic_rx_frames": nic.rx_frames,
            "nic_rx_ring_drops": nic.rx_ring_drops,
            "driver": dict(self.node.driver.counters.as_dict()),
            "digest": digest.hexdigest(),
        }


class OpenmxShard:
    """One PDES shard: a sub-cluster plus its slice of the workload."""

    def __init__(self, shard_id: int, plan: ShardPlan, params: OpenmxParams):
        self.shard_id = shard_id
        self.plan = plan
        self.params = params
        self.registry = MetricRegistry()
        self.cluster = build_cluster(
            nhosts=params.nhosts,
            config=params.config(),
            memory_bytes=params.memory_bytes,
            fabric_latency_ns=params.latency_ns,
            pin_fraction=params.pin_fraction,
            metrics=self.registry,
            shard_plan=plan,
            shard_id=shard_id,
            shard_fault=params.fault,
        )
        self.env = self.cluster.env
        self.fabric = self.cluster.fabric
        self.hosts = {h: OpenmxHost(self.cluster, h, params,
                                    expected_count(params, h))
                      for h in plan.shards[shard_id]}

    def next_time(self) -> int | None:
        return self.env.next_event_time()

    def ingress(self, entries) -> None:
        self.fabric.ingress(entries)

    def run_window(self, until: int):
        t0 = _time.process_time()
        self.env.run(until=until)
        busy = _time.process_time() - t0
        return self.fabric.take_egress(), self.env.next_event_time(), busy

    def end_state(self) -> dict:
        fab = self.fabric
        return {
            "now_ns": self.env.now,
            "events": self.env.events_processed,
            "hosts": [self.hosts[h].state() for h in sorted(self.hosts)],
            # Shard-count-independent totals only (the local/cross split
            # depends on the partition by definition).
            "fabric": {
                "carried": fab.frames_carried,
                "dropped": fab.frames_dropped,
                "duplicated": fab.frames_duplicated,
                "delayed": fab.frames_delayed,
                "delivered": fab.frames_delivered,
            },
        }


@dataclass(frozen=True)
class _OpenmxFactory:
    params: OpenmxParams

    def __call__(self, shard_id: int, plan: ShardPlan) -> OpenmxShard:
        return OpenmxShard(shard_id, plan, self.params)


def make_plan(params: OpenmxParams, nshards: int,
              strategy: str = "block") -> ShardPlan:
    """Partition the scenario's hosts; affinity reads the pure traffic
    matrix replayed from the schedules (no simulation needed)."""
    traffic = traffic_matrix(params) if strategy == "affinity" else None
    return partition_hosts(params.nhosts, nshards, strategy, traffic=traffic)


def run_openmx(params: OpenmxParams, nshards: int, *,
               lookahead_ns: int | None = None, mode: str | None = None,
               strategy: str = "block",
               registry: MetricRegistry | None = None) -> dict:
    """Run the full-stack scenario across ``nshards`` PDES shards.

    The lookahead is the inter-host fabric latency: a frame leaves its
    source NIC (TX serialization is host-local and already paid) at carry
    time ``t`` and cannot arrive anywhere before ``t + latency_ns``.
    """
    plan = make_plan(params, nshards, strategy)
    if lookahead_ns is None:
        lookahead_ns = params.latency_ns
    if not 0 < lookahead_ns <= params.latency_ns:
        raise ValueError(
            f"lookahead_ns must be in (0, latency_ns={params.latency_ns}], "
            f"got {lookahead_ns}")
    out = run_partitioned(_OpenmxFactory(params), plan,
                          lookahead_ns=lookahead_ns, mode=mode,
                          registry=registry)
    out["stats"]["strategy"] = strategy
    return out


# -- canned scenario + A/B harness -------------------------------------------


def openmx_params(quick: bool = False, seed: int = 2009,
                  fault_seed: int | None = None, nhosts: int = 16,
                  pinning_mode: PinningMode = PinningMode.OVERLAP_CACHE,
                  ) -> OpenmxParams:
    """The canned ``openmx_shard`` shape used by the bench CLI and CI."""
    fault = None
    if fault_seed is not None:
        fault = SeededFaultPlan(seed=fault_seed, drop_per_mille=20,
                                dup_per_mille=10, delay_per_mille=30,
                                delay_quantum_ns=2_000, max_delay_quanta=4)
    return OpenmxParams(nhosts=nhosts,
                        rounds=6 if quick else 30,
                        seed=seed,
                        pinning_mode=pinning_mode,
                        fault=fault)


def openmx_sim_state(quick: bool = False, shards: int = 1, seed: int = 2009,
                     chaos_seed: int = 7, mode: str | None = None,
                     strategy: str = "block") -> dict:
    """Clean + chaos end states for one shard count — the CI digest gate
    diffs this JSON across ``--shards {1,2,4}`` and requires equality."""
    clean = run_openmx(openmx_params(quick=quick, seed=seed), shards,
                       mode=mode, strategy=strategy)
    chaos = run_openmx(openmx_params(quick=quick, seed=seed,
                                     fault_seed=chaos_seed), shards,
                       mode=mode, strategy=strategy)
    return {
        "schema": "repro.openmx-shard.sim/v1",
        "quick": quick,
        "shards": shards,
        "strategy": strategy,
        "clean": clean["state"],
        "chaos": chaos["state"],
    }


def run_openmx_ab(quick: bool = False, shards: int = 4, repeat: int = 2,
                  seed: int = 2009, lookahead_ns: int | None = None) -> dict:
    """Interleaved serial-vs-sharded A/B over the full Open-MX stack.

    Aborts the process on the first end-state divergence.  Also runs the
    sharded scenario once per partition strategy (block / stripe /
    affinity) — every strategy must land on the same digest, and the
    report shows how much cross-shard traffic affinity placement saves.
    """
    params = openmx_params(quick=quick, seed=seed)
    serial_best = float("inf")
    sharded_best = float("inf")
    golden = None
    best_stats = None
    for _ in range(repeat):
        a = run_openmx(params, 1, mode="inline", lookahead_ns=lookahead_ns)
        b = run_openmx(params, shards, mode="fork",
                       lookahead_ns=lookahead_ns)
        if a["state"] != b["state"]:
            raise SystemExit(
                "openmx_shard A/B divergence: serial digest "
                f"{a['state']['digest']} != sharded ({shards}) digest "
                f"{b['state']['digest']}")
        golden = a["state"]
        serial_best = min(serial_best, a["stats"]["wall_s"])
        if b["stats"]["wall_s"] < sharded_best:
            sharded_best = b["stats"]["wall_s"]
            best_stats = b["stats"]

    strategies: dict[str, int] = {}
    for strat in ("block", "stripe", "affinity"):
        out = run_openmx(params, shards, mode="fork",
                         lookahead_ns=lookahead_ns, strategy=strat)
        if out["state"] != golden:
            raise SystemExit(
                f"openmx_shard strategy {strat!r} diverged from the serial "
                f"end state: {out['state']['digest']} != {golden['digest']}")
        strategies[strat] = out["stats"]["cross_shard_frames"]

    host_cores = host_core_count()
    block = strategies["block"] or 1
    stripe = strategies["stripe"] or 1
    return {
        "schema": "repro.bench.openmx-shard/v1",
        "scenario": "openmx_shard",
        "quick": quick,
        "nhosts": params.nhosts,
        "shards": shards,
        "repeat": repeat,
        "host_cores": host_cores,
        "core_starved": host_cores < shards,
        "serial_wall_s": serial_best,
        "sharded_wall_s": sharded_best,
        "speedup": serial_best / sharded_best if sharded_best else 0.0,
        "critical_path_s": best_stats["critical_path_s"],
        "critical_path_speedup": (serial_best / best_stats["critical_path_s"]
                                  if best_stats["critical_path_s"] else 0.0),
        "windows": best_stats["windows"],
        "cross_shard_frames": best_stats["cross_shard_frames"],
        "barrier_idle_s": best_stats["barrier_idle_s"],
        "strategies": strategies,
        "affinity_cut_vs_block": 1.0 - strategies["affinity"] / block,
        "affinity_cut_vs_stripe": 1.0 - strategies["affinity"] / stripe,
        "digest": golden["digest"],
        "events": golden["events"],
    }
