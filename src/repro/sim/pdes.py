"""Conservative-lookahead parallel discrete-event simulation (PDES).

One scenario's hosts are partitioned across shards
(:func:`repro.cluster.builder.partition_hosts`); each shard runs its own
:class:`~repro.sim.Environment` — in a forked worker process or inline —
and the coordinator advances all of them in lock-stepped *conservative
windows* derived from the minimum cross-shard fabric latency.

Window rule.  Let ``gmin`` be the global minimum over (a) every shard's
:meth:`~repro.sim.Environment.next_event_time` and (b) the arrival
instants of cross-shard frames routed at the last barrier but not yet
ingested.  The next window runs every shard to::

    end = gmin + lookahead - 1          (lookahead <= min fabric latency)

Any frame carried *during* that window is sent at an instant ``t >= gmin``
(causality: nothing can fire before the global minimum), so it arrives at
``t + latency >= gmin + lookahead > end`` — strictly after the window.
Cross-shard traffic therefore only ever lands in a *future* window, and
exchanging frames at the barrier between windows is race-free.
:meth:`repro.cluster.network.ShardFabric.ingress` enforces this with a
hard error rather than trusting the math.  The null-message trick falls
out of the same rule: an idle shard reports ``next_event_time() = None``
and simply stops constraining ``gmin``, so windows stretch to the next
real work instead of ticking through dead air.

Determinism.  The whole point of the exercise is that sharded runs are
**byte-identical** to serial ones.  Three disciplines make that true:

* *Canonical same-instant merge order* — the shard fabric batches
  deliveries per ``(arrival, destination)`` and sorts each batch by the
  frame's ``(src, seq, copy)`` key, so delivery order never depends on
  which shard a frame came from or when its timer object was created.
* *Pure fault plans* — :class:`SeededFaultPlan` decides drop/duplicate/
  delay from a hash of ``(seed, src, dst, seq)`` alone, so chaos verdicts
  are identical at every shard count.
* *Parity alignment* — the soak workload sends requests at even instants
  over an odd latency, so requests arrive at odd instants, responses at
  even ones, and no two state-sharing callbacks ever collide on the same
  instant (see :class:`SoakHost`).

Because the window sequence itself is a pure function of global event
times (identical at every shard count), ``run_shards(params, 1)`` *is*
the serial baseline: same code path, same windows, no cross-shard
traffic.  The A/B harness (:func:`run_pdes_ab`) interleaves serial and
sharded runs and aborts on the first end-state divergence.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import random
import time as _time
import traceback
from dataclasses import dataclass
from typing import Sequence

from repro.cluster.builder import ShardPlan, partition_hosts
from repro.cluster.network import ShardFabric, ShardFrame
from repro.experiments.parallel import merge_worker_registries
from repro.obs.metrics import MetricRegistry, current_registry
from repro.sim.engine import Environment, SimulationError

__all__ = [
    "SeededFaultPlan",
    "SoakHost",
    "SoakParams",
    "SoakShard",
    "host_core_count",
    "pdes_sim_state",
    "resolve_shards",
    "run_partitioned",
    "run_pdes_ab",
    "run_shards",
    "soak_params",
]

_MASK64 = (1 << 64) - 1


def _mix(x: int) -> int:
    """splitmix64 finalizer: a high-quality pure integer hash.

    Python's builtin ``hash`` is salted per-process for strings and is
    the identity for small ints — useless for cross-process-reproducible
    fault verdicts.  This is the standard 64-bit mixer instead.
    """
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


@dataclass(frozen=True)
class SeededFaultPlan:
    """Chaos verdicts as a pure function of the frame key.

    ``plan(src, dst, seq) -> (drop, copies, extra_delay_ns)`` depends only
    on ``(seed, src, dst, seq)`` — never on which shard evaluates it or in
    what order — so a faulted run makes identical decisions at every shard
    count.  Extra delay is quantised to an **even** number of nanoseconds
    to preserve the soak workload's parity discipline (see module doc).
    """

    seed: int
    drop_per_mille: int = 0
    dup_per_mille: int = 0
    delay_per_mille: int = 0
    delay_quantum_ns: int = 2_000
    max_delay_quanta: int = 8

    def __post_init__(self) -> None:
        if self.delay_quantum_ns % 2:
            raise ValueError("delay_quantum_ns must be even (parity "
                             f"discipline), got {self.delay_quantum_ns}")
        if self.max_delay_quanta <= 0:
            raise ValueError("max_delay_quanta must be positive")

    @property
    def max_extra_delay_ns(self) -> int:
        return self.max_delay_quanta * self.delay_quantum_ns

    def __call__(self, src: int, dst: int, seq: int) -> tuple[bool, int, int]:
        h = _mix(self.seed * 0x9E3779B97F4A7C15
                 + _mix((src << 40) ^ (dst << 20) ^ seq))
        drop = h % 1000 < self.drop_per_mille
        h = _mix(h)
        copies = 2 if h % 1000 < self.dup_per_mille else 1
        h = _mix(h)
        extra = 0
        if h % 1000 < self.delay_per_mille:
            extra = (1 + _mix(h) % self.max_delay_quanta) * self.delay_quantum_ns
        return drop, copies, extra


@dataclass(frozen=True)
class SoakParams:
    """Shape of the ``pdes_soak`` scenario.  Frozen and picklable: the
    coordinator hands one copy to every forked shard worker."""

    nhosts: int = 8
    rounds: int = 600
    seed: int = 2009
    latency_ns: int = 120_001
    max_gap_ns: int = 16_000
    load_procs: int = 3
    load_tick_lo: int = 200
    load_tick_hi: int = 1_200
    fault: SeededFaultPlan | None = None

    def __post_init__(self) -> None:
        if self.nhosts < 2:
            raise ValueError("soak needs at least 2 hosts")
        if self.latency_ns % 2 == 0:
            # Odd latency + even send instants + even fault delays ==
            # requests arrive at odd instants, responses at even ones:
            # the parity split that keeps same-instant callbacks from
            # ever sharing mutable state.
            raise ValueError(f"latency_ns must be odd, got {self.latency_ns}")
        if self.max_gap_ns < 4:
            raise ValueError("max_gap_ns too small")


class SoakHost:
    """One host of the soak workload: request generator, responder, and a
    pack of local load-tick processes.

    Parity discipline (what keeps every shard count byte-identical):

    * the generator sends ``kind="req"`` frames at **even** instants
      (gaps are ``2 * randrange(...)``, starting from 0);
    * latency is odd and fault delays even, so requests arrive at **odd**
      instants; the delivery handler answers with ``kind="rsp"``
      immediately, so responses arrive back at **even** instants;
    * response handlers never send (two-hop traffic only), so the per-host
      sequence counter is only touched by the generator (even instants)
      and by request deliveries (odd instants) — never concurrently;
    * the generator's shutdown flag flips at an **odd** instant while
      load ticks fire at even ones, so a tick can never straddle the flip;
    * load processes own private RNGs and touch only their own counter.

    The receive digest folds every delivered frame in the fabric's
    canonical order, so it is a byte-exact witness of delivery history.
    """

    def __init__(self, env: Environment, host_id: int, params: SoakParams,
                 fabric: ShardFabric):
        self.env = env
        self.id = host_id
        self.params = params
        self.fabric = fabric
        self.active = True
        self.tx_req = 0
        self.tx_rsp = 0
        self.rx_req = 0
        self.rx_rsp = 0
        self.rx_bytes = 0
        self.load_work = 0
        self._digest = hashlib.sha256()
        fabric.attach(host_id, self.deliver)
        env.process(self._traffic(), name=f"soak-traffic-{host_id}")
        for j in range(params.load_procs):
            env.process(self._load(j), name=f"soak-load-{host_id}.{j}")

    def deliver(self, frame: ShardFrame, now: int) -> None:
        self._digest.update(
            f"{now}:{frame.src}:{frame.seq}:{frame.copy}:"
            f"{frame.kind}:{frame.nbytes}\n".encode())
        self.rx_bytes += frame.nbytes
        if frame.kind == "req":
            self.rx_req += 1
            nbytes = 64 + (frame.nbytes * 7 + frame.seq * 13 + frame.src) % 1_400
            self.fabric.send(self.id, frame.src, "rsp", nbytes)
            self.tx_rsp += 1
        else:
            self.rx_rsp += 1

    def _traffic(self):
        p = self.params
        rng = random.Random(_mix(p.seed * 0x10001 + self.id))
        for _ in range(p.rounds):
            yield self.env.timeout(2 * rng.randrange(1, p.max_gap_ns // 2))
            peer = rng.randrange(p.nhosts - 1)
            if peer >= self.id:
                peer += 1
            self.fabric.send(self.id, peer, "req", rng.randrange(64, 1_500))
            self.tx_req += 1
        # Keep load ticking roughly until the last responses are home,
        # then stop.  The +1 makes the flip instant odd (see class doc).
        max_extra = p.fault.max_extra_delay_ns if p.fault is not None else 0
        yield self.env.timeout(2 * (p.latency_ns + max_extra) + 1)
        self.active = False

    def _load(self, j: int):
        p = self.params
        rng = random.Random(_mix(p.seed * 0x20003 + self.id * 0x101 + j))
        while self.active:
            yield self.env.timeout(2 * rng.randrange(p.load_tick_lo,
                                                     p.load_tick_hi))
            self.load_work += 1

    def state(self) -> dict:
        return {
            "id": self.id,
            "tx_req": self.tx_req,
            "tx_rsp": self.tx_rsp,
            "rx_req": self.rx_req,
            "rx_rsp": self.rx_rsp,
            "rx_bytes": self.rx_bytes,
            "load_work": self.load_work,
            "digest": self._digest.hexdigest(),
        }


class SoakShard:
    """One shard: a private environment + registry simulating the subset
    of hosts :attr:`plan.shards[shard_id]` assigned to it."""

    def __init__(self, shard_id: int, plan: ShardPlan, params: SoakParams):
        self.shard_id = shard_id
        self.plan = plan
        self.params = params
        self.registry = MetricRegistry()
        env = Environment()
        env.metrics = self.registry
        self.env = env
        local = plan.shards[shard_id]
        self.fabric = ShardFabric(env, params.latency_ns, local,
                                  fault=params.fault, metrics=self.registry)
        self.hosts = {h: SoakHost(env, h, params, self.fabric)
                      for h in local}

    def next_time(self) -> int | None:
        return self.env.next_event_time()

    def ingress(self, entries) -> None:
        self.fabric.ingress(entries)

    def run_window(self, until: int):
        """Run one conservative window; return (egress, next_time, busy_s).

        ``busy_s`` is **CPU** time, not wall time: forked shards time-share
        the host's cores, so the wall time one worker observes inside
        ``run()`` is inflated by however many siblings were runnable at
        once.  CPU time is contention-free, which makes the coordinator's
        critical path (sum over windows of the slowest shard's busy time)
        an honest lower bound on the sharded wall of an uncontended host.
        """
        t0 = _time.process_time()
        self.env.run(until=until)
        busy = _time.process_time() - t0
        return self.fabric.take_egress(), self.env.next_event_time(), busy

    def end_state(self) -> dict:
        fab = self.fabric
        return {
            "now_ns": self.env.now,
            "events": self.env.events_processed,
            "hosts": [self.hosts[h].state() for h in sorted(self.hosts)],
            # Shard-count-independent fabric totals only: the local vs
            # cross-shard split obviously depends on the partition.
            "fabric": {
                "carried": fab.frames_carried,
                "dropped": fab.frames_dropped,
                "duplicated": fab.frames_duplicated,
                "delayed": fab.frames_delayed,
                "delivered": fab.frames_delivered,
            },
        }


# -- worker plumbing ----------------------------------------------------------
#
# The plumbing is *generic*: a shard factory is any picklable callable
# ``factory(shard_id, plan) -> shard`` returning an object with the
# SoakShard protocol — ``next_time()``, ``ingress(entries)``,
# ``run_window(until) -> (egress, next_time, busy_s)``, ``end_state()``,
# and a ``registry`` attribute.  ``pdes_soak`` and the full-stack
# ``openmx_shard`` scenario (:mod:`repro.sim.openmx_shard`) both ride on
# the same coordinator through their factories.


@dataclass(frozen=True)
class _SoakFactory:
    params: SoakParams

    def __call__(self, shard_id: int, plan: ShardPlan) -> SoakShard:
        return SoakShard(shard_id, plan, self.params)


def _shard_worker(conn, shard_id: int, plan: ShardPlan, factory) -> None:
    """Forked shard worker: build the shard, then serve window commands."""
    try:
        shard = factory(shard_id, plan)
        conn.send(("time", shard.next_time()))
        while True:
            msg = conn.recv()
            if msg[0] == "window":
                _, end, ingress = msg
                shard.ingress(ingress)
                egress, nxt, busy = shard.run_window(end)
                conn.send(("done", egress, nxt, busy))
            elif msg[0] == "finish":
                conn.send(("state", shard.end_state(), shard.registry))
                return
            else:
                raise SimulationError(f"unknown shard command {msg[0]!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


class _ForkHandle:
    """Coordinator-side proxy for a forked shard worker."""

    def __init__(self, shard_id: int, plan: ShardPlan, factory, ctx) -> None:
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(target=_shard_worker,
                                args=(child, shard_id, plan, factory),
                                daemon=True)
        self.proc.start()
        child.close()

    def _recv(self, want: str):
        msg = self.conn.recv()
        if msg[0] == "error":
            raise SimulationError(f"PDES shard worker failed:\n{msg[1]}")
        if msg[0] != want:
            raise SimulationError(f"expected {want!r} from shard worker, "
                                  f"got {msg[0]!r}")
        return msg[1:]

    def initial_next(self):
        return self._recv("time")[0]

    def start_window(self, end: int, ingress) -> None:
        self.conn.send(("window", end, ingress))

    def finish_window(self):
        return self._recv("done")

    def finish(self):
        self.conn.send(("finish",))
        return self._recv("state")

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        self.proc.join(timeout=10)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=10)


class _InlineHandle:
    """Same protocol as :class:`_ForkHandle`, driven in-process.  Used for
    the serial baseline (``shards=1``) and for fast property tests — the
    shard code path is identical either way."""

    def __init__(self, shard_id: int, plan: ShardPlan, factory) -> None:
        self.shard = factory(shard_id, plan)
        self._reply = None

    def initial_next(self):
        return self.shard.next_time()

    def start_window(self, end: int, ingress) -> None:
        self.shard.ingress(ingress)
        self._reply = self.shard.run_window(end)

    def finish_window(self):
        reply, self._reply = self._reply, None
        return reply

    def finish(self):
        return self.shard.end_state(), self.shard.registry

    def close(self) -> None:
        pass


# -- coordinator --------------------------------------------------------------


def _merge_states(states: Sequence[dict]) -> dict:
    """Fold per-shard end states into one shard-count-independent state.

    ``now_ns`` must agree (shards barrier on the same window end);
    ``events`` sum; ``hosts`` concatenate sorted by global id; any other
    top-level key must be a flat dict of numeric totals (e.g. the fabric
    counters) and is summed field-wise — which keeps the function generic
    across scenarios without per-scenario merge code.
    """
    nows = {st["now_ns"] for st in states}
    if len(nows) != 1:
        raise SimulationError(
            f"shard clocks diverged at the final barrier: {sorted(nows)}")
    state = {
        "now_ns": nows.pop(),
        "events": sum(st["events"] for st in states),
        "hosts": sorted((h for st in states for h in st["hosts"]),
                        key=lambda h: h["id"]),
    }
    for key, value in states[0].items():
        if key in ("now_ns", "events", "hosts"):
            continue
        if not isinstance(value, dict):
            raise SimulationError(
                f"cannot merge shard-state key {key!r}: expected a dict of "
                f"numeric totals, got {type(value).__name__}")
        state[key] = {k: sum(st[key][k] for st in states) for k in value}
    blob = json.dumps(state, sort_keys=True, separators=(",", ":"))
    state["digest"] = hashlib.sha256(blob.encode()).hexdigest()
    return state


def run_partitioned(factory, plan: ShardPlan, *, lookahead_ns: int,
                    mode: str | None = None,
                    registry: MetricRegistry | None = None) -> dict:
    """Drive one partitioned scenario through conservative windows.

    ``factory(shard_id, plan)`` builds one shard (see the worker-plumbing
    note above for the shard protocol); it must be picklable so forked
    workers can reconstruct their shard after ``fork()``.  ``mode`` is
    ``"fork"`` (worker processes) or ``"inline"`` (all shards driven in
    this process — same code path, no parallelism); the default forks
    only when there is more than one shard.  Returns ``{"state": ...,
    "stats": ...}`` where ``state`` is byte-identical for every
    ``(nshards, mode, partition)`` choice and ``stats`` carries the
    window/barrier accounting.
    """
    if lookahead_ns <= 0:
        raise ValueError(f"lookahead_ns must be positive, got {lookahead_ns}")
    if mode is None:
        mode = "fork" if plan.nshards > 1 else "inline"
    if mode not in ("fork", "inline"):
        raise ValueError(f"unknown mode {mode!r}")

    wall_start = _time.perf_counter()
    if mode == "fork":
        ctx = multiprocessing.get_context("fork")
        handles = [_ForkHandle(s, plan, factory, ctx)
                   for s in range(plan.nshards)]
    else:
        handles = [_InlineHandle(s, plan, factory)
                   for s in range(plan.nshards)]
    try:
        next_times = [h.initial_next() for h in handles]
        pending: list[list] = [[] for _ in handles]
        windows = 0
        advance_ns = 0
        cross_frames = 0
        barrier_idle_s = 0.0
        critical_path_s = 0.0
        prev_end = 0
        while True:
            cands = [t for t in next_times if t is not None]
            cands.extend(a for ing in pending for a, _ in ing)
            if not cands:
                break
            end = min(cands) + lookahead_ns - 1
            # Send every window command before reading any reply: with
            # forked workers this is what makes the shards actually run
            # concurrently rather than round-robin.
            for handle, ingress in zip(handles, pending):
                handle.start_window(end, ingress)
            pending = [[] for _ in handles]
            replies = [h.finish_window() for h in handles]
            windows += 1
            advance_ns += end - prev_end
            prev_end = end
            busies = [r[2] for r in replies]
            bmax = max(busies)
            critical_path_s += bmax
            barrier_idle_s += sum(bmax - b for b in busies)
            next_times = [r[1] for r in replies]
            for egress, _, _ in replies:
                for arrival, frame in egress:
                    pending[plan.shard_of(frame.dst)].append((arrival, frame))
                    cross_frames += 1
        states = []
        registries = []
        for handle in handles:
            st, reg = handle.finish()
            states.append(st)
            registries.append(reg)
    finally:
        for handle in handles:
            handle.close()
    wall = _time.perf_counter() - wall_start

    target = current_registry() if registry is None else registry
    if target is not None:
        target.counter(
            "pdes_windows",
            "conservative windows executed by the PDES coordinator",
        ).inc(windows)
        target.counter(
            "pdes_lookahead_ns",
            "simulated nanoseconds advanced across PDES windows",
        ).inc(advance_ns)
        target.counter(
            "pdes_barrier_wait_us",
            "aggregate shard idle time at PDES window barriers",
        ).inc(int(barrier_idle_s * 1e6))
    # Worker registries carry the per-shard pdes_frames_*, omx_* and sim_*
    # series; fold them in shard order so aggregation is deterministic.
    merge_worker_registries(registries, into=registry)

    return {
        "state": _merge_states(states),
        "stats": {
            "shards": plan.nshards,
            "mode": mode,
            "lookahead_ns": lookahead_ns,
            "windows": windows,
            "advance_ns": advance_ns,
            "cross_shard_frames": cross_frames,
            "wall_s": wall,
            "critical_path_s": critical_path_s,
            "barrier_idle_s": barrier_idle_s,
        },
    }


def run_shards(params: SoakParams, nshards: int, *,
               lookahead_ns: int | None = None, mode: str | None = None,
               strategy: str = "block",
               registry: MetricRegistry | None = None) -> dict:
    """Run the soak scenario across ``nshards`` conservative PDES shards.

    Thin wrapper over :func:`run_partitioned` with the soak factory and a
    lookahead derived from (and validated against) the soak fabric
    latency.
    """
    plan = partition_hosts(params.nhosts, nshards, strategy)
    if lookahead_ns is None:
        lookahead_ns = params.latency_ns
    if not 0 < lookahead_ns <= params.latency_ns:
        raise ValueError(
            f"lookahead_ns must be in (0, latency_ns={params.latency_ns}], "
            f"got {lookahead_ns}")
    out = run_partitioned(_SoakFactory(params), plan,
                          lookahead_ns=lookahead_ns, mode=mode,
                          registry=registry)
    out["stats"]["strategy"] = strategy
    return out


# -- shard-count policy -------------------------------------------------------


def host_core_count() -> int:
    """Cores actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_shards(spec: int | str, default: int = 4) -> int:
    """Resolve a ``--shards`` value; ``"auto"`` caps at the core count.

    Forked shards beyond the host's cores only time-share — the wall can
    even regress vs serial while the critical path still shrinks (the
    ``core_starved`` flag in A/B reports makes that explicit).  ``auto``
    picks ``min(default, host_core_count())`` so a laptop CI runner never
    starts a core-starved fleet by default, while an explicit integer is
    always honoured.
    """
    if isinstance(spec, str):
        spec = spec.strip().lower()
        if spec == "auto":
            return max(1, min(default, host_core_count()))
        try:
            value = int(spec)
        except ValueError:
            raise ValueError(f"--shards expects an integer or 'auto', "
                             f"got {spec!r}") from None
    else:
        value = spec
    if value <= 0:
        raise ValueError(f"shard count must be positive, got {value}")
    return value


# -- canned scenario + A/B harness -------------------------------------------


def soak_params(quick: bool = False, seed: int = 2009,
                fault_seed: int | None = None, nhosts: int = 8) -> SoakParams:
    """The canned ``pdes_soak`` shape used by the bench CLI and CI gates."""
    fault = None
    if fault_seed is not None:
        fault = SeededFaultPlan(seed=fault_seed, drop_per_mille=25,
                                dup_per_mille=15, delay_per_mille=40)
    return SoakParams(nhosts=nhosts,
                      rounds=60 if quick else 900,
                      seed=seed,
                      load_procs=2 if quick else 3,
                      fault=fault)


def pdes_sim_state(quick: bool = False, shards: int = 1, seed: int = 2009,
                   chaos_seed: int = 7, mode: str | None = None) -> dict:
    """Clean + chaos end states for one shard count — the CI digest gate
    diffs this JSON across ``--shards {1,2,4}`` and requires equality."""
    clean = run_shards(soak_params(quick=quick, seed=seed), shards,
                       mode=mode)
    chaos = run_shards(soak_params(quick=quick, seed=seed,
                                   fault_seed=chaos_seed), shards, mode=mode)
    return {
        "schema": "repro.pdes.sim/v1",
        "quick": quick,
        "shards": shards,
        "clean": clean["state"],
        "chaos": chaos["state"],
    }


def run_pdes_ab(quick: bool = False, shards: int = 4, repeat: int = 3,
                seed: int = 2009, lookahead_ns: int | None = None) -> dict:
    """Interleaved serial-vs-sharded A/B with an end-state equality gate.

    Runs ``repeat`` interleaved (serial inline, sharded fork) pairs,
    aborts the process on the first end-state divergence, and reports
    best-of walls.  ``critical_path_s`` — the sum over windows of the
    slowest shard's busy time — is what the sharded wall converges to on
    a machine with >= ``shards`` free cores; on a busy or small host the
    measured wall is honest and the critical path shows the headroom.
    """
    params = soak_params(quick=quick, seed=seed)
    serial_best = float("inf")
    sharded_best = float("inf")
    golden = None
    best_stats = None
    for _ in range(repeat):
        a = run_shards(params, 1, mode="inline", lookahead_ns=lookahead_ns)
        b = run_shards(params, shards, mode="fork", lookahead_ns=lookahead_ns)
        if a["state"] != b["state"]:
            raise SystemExit(
                "PDES A/B divergence: serial digest "
                f"{a['state']['digest']} != sharded ({shards}) digest "
                f"{b['state']['digest']}")
        golden = a["state"]
        serial_best = min(serial_best, a["stats"]["wall_s"])
        if b["stats"]["wall_s"] < sharded_best:
            sharded_best = b["stats"]["wall_s"]
            best_stats = b["stats"]
    host_cores = host_core_count()
    return {
        "schema": "repro.bench.pdes/v1",
        "scenario": "pdes_soak",
        "quick": quick,
        "shards": shards,
        "repeat": repeat,
        "host_cores": host_cores,
        # More forked shards than free cores: the sharded *wall* below is
        # dominated by time-sharing, not by the algorithm — read
        # critical_path_speedup instead (and consider --shards auto).
        "core_starved": host_cores < shards,
        "serial_wall_s": serial_best,
        "sharded_wall_s": sharded_best,
        "speedup": serial_best / sharded_best if sharded_best else 0.0,
        "critical_path_s": best_stats["critical_path_s"],
        "critical_path_speedup": (serial_best / best_stats["critical_path_s"]
                                  if best_stats["critical_path_s"] else 0.0),
        "windows": best_stats["windows"],
        "cross_shard_frames": best_stats["cross_shard_frames"],
        "barrier_idle_s": best_stats["barrier_idle_s"],
        "digest": golden["digest"],
        "events": golden["events"],
    }
