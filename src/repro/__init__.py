"""repro — reproduction of Goglin's decoupled/overlapped memory pinning paper.

The package simulates the complete Open-MX message-passing stack over
generic Ethernet, including the Linux-kernel facilities the paper relies on
(page pinning, MMU notifiers, interrupt-driven receive processing), and
reproduces every table and figure of the paper's evaluation.

Layering, bottom to top:

``repro.sim``       discrete-event engine (events, processes, resources)
``repro.hw``        hosts, CPU cores, physical memory, NICs, I/OAT engines
``repro.kernel``    address spaces, paging, pinning, MMU notifiers, IRQs
``repro.openmx``    the paper's contribution: MXoE protocol + pinning models
``repro.baselines`` related-work comparison points (user-space cache, pipeline)
``repro.mpi``       MPI-like layer (p2p + IMB collectives) over Open-MX
``repro.cluster``   cluster construction and the Ethernet fabric
``repro.workloads`` IMB and NPB-IS workload drivers
``repro.experiments`` one module per paper table/figure
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
