"""A simplified in-kernel TCP/IP stack — the paper's motivating baseline.

The introduction motivates Open-MX by what MPI-over-TCP cannot do: the
TCP/IP stack "was not designed for this context".  Concretely, for bulk
transfers on the hardware of the era, TCP pays

* a **copy on each side** of the wire *per segment* — sender copies user
  data into kernel socket buffers, the receive bottom half copies payload
  into the socket buffer, and the application's ``recv`` copies it out
  again (Open-MX's receive path has a single copy, offloadable to I/OAT,
  and its send path is zero-copy from pinned pages),
* per-segment protocol processing in both directions plus ACK traffic,
* small segments (1500-byte MTU was the norm; even with jumbo frames the
  per-segment costs remain).

This module implements a connection-oriented byte stream over the same
simulated Ethernet substrate: sliding-window flow control, delayed ACKs,
go-back-N retransmission, real payload bytes end to end.  It is
deliberately simpler than real TCP (no congestion control dynamics, no
SACK) — the cluster fabric is lossless and uncongested, where those
mechanisms are idle; what matters for the comparison is the copy and
per-segment cost structure.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass, field

from repro.hw.cpu import PRIO_USER
from repro.hw.nic import EthernetFrame
from repro.kernel.context import AcquiringContext, ExecContext
from repro.kernel.kernel import Kernel, UserProcess
from repro.sim import Counter, Environment, Event
from repro.util.units import SECOND

__all__ = ["ETH_P_IP", "TcpSegment", "TcpSocket", "TcpStack"]

ETH_P_IP = 0x0800
IP_TCP_HEADER_BYTES = 52  # IPv4 (20) + TCP with timestamps (32)

# Per-segment protocol processing (header parsing, checksum verification,
# sequence bookkeeping) on a ~3 GHz core of the era; scaled by clock.
TCP_SEGMENT_COST_NS_AT_3GHZ = 1_500
ACK_COST_NS_AT_3GHZ = 500


@dataclass(frozen=True)
class TcpSegment:
    """One TCP segment (or pure ACK when ``data`` is empty)."""

    src_board: str
    src_port: int
    dst_port: int
    seq: int
    ack: int
    data: bytes = b""

    @property
    def wire_payload_bytes(self) -> int:
        return IP_TCP_HEADER_BYTES + len(self.data)


@dataclass
class _RxState:
    buffer: bytearray = field(default_factory=bytearray)
    rcv_next: int = 0
    data_ready: Event | None = None
    segs_since_ack: int = 0


class TcpSocket:
    """One established connection endpoint."""

    def __init__(self, stack: "TcpStack", port: int, peer_board: str,
                 peer_port: int):
        self.stack = stack
        self.env = stack.env
        self.port = port
        self.peer_board = peer_board
        self.peer_port = peer_port
        # Send side.
        self.snd_next = 0  # next byte sequence to send
        self.snd_una = 0  # oldest unacknowledged byte
        self._unacked: list[TcpSegment] = []
        self._window_open: Event | None = None
        self._ack_activity: Event = self.env.event()
        # Receive side.
        self.rx = _RxState()
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- sending ------------------------------------------------------------
    def send(self, proc: UserProcess, va: int, nbytes: int) -> Generator:
        """Process: blocking send of ``nbytes`` from the user buffer.

        Copies into kernel socket buffers segment by segment (the first
        TCP copy), then streams segments under the send window.
        """
        stack = self.stack
        mss = stack.mss
        ctx = AcquiringContext(self.env, proc.core)
        offset = 0
        while offset < nbytes:
            length = min(mss, nbytes - offset)
            while self.snd_next + length - self.snd_una > stack.window_bytes:
                # Window full: wait for ACKs.
                self._window_open = self.env.event()
                yield self._window_open
            yield from ctx.charge(proc.core.spec.syscall_ns // 4)
            # Copy #1: user -> socket buffer.
            yield from ctx.memcpy(length)
            data = proc.aspace.read(va + offset, length)
            seg = TcpSegment(
                src_board=stack.board, src_port=self.port,
                dst_port=self.peer_port, seq=self.snd_next,
                ack=self.rx.rcv_next, data=data,
            )
            self._unacked.append(seg)
            yield from stack._xmit(ctx, self.peer_board, seg)
            self.snd_next += length
            offset += length
            self.bytes_sent += length
        # Block until everything is acknowledged (send-completes-on-ack
        # keeps the comparison to the rendezvous fair).
        while self.snd_una < self.snd_next:
            self._ack_activity = self.env.event()
            yield self._ack_activity

    # -- receiving ------------------------------------------------------------
    def recv(self, proc: UserProcess, va: int, nbytes: int) -> Generator:
        """Process: blocking receive of exactly ``nbytes`` into ``va``.

        Copies out of the socket buffer (the second TCP copy on this side).
        """
        ctx = AcquiringContext(self.env, proc.core, PRIO_USER)
        received = 0
        while received < nbytes:
            if not self.rx.buffer:
                self.rx.data_ready = self.env.event()
                yield self.rx.data_ready
                continue
            chunk = bytes(self.rx.buffer[: nbytes - received])
            del self.rx.buffer[: len(chunk)]
            # Copy #2: socket buffer -> user.
            yield from ctx.memcpy(len(chunk))
            proc.aspace.write(va + received, chunk)
            received += len(chunk)
        self.bytes_received += received
        return received

    # -- stack callbacks ---------------------------------------------------------
    def _on_segment(self, ctx: ExecContext, seg: TcpSegment) -> Generator:
        stack = self.stack
        ghz_scale = 3.16 / ctx.core.spec.ghz
        if seg.data:
            yield from ctx.charge(int(TCP_SEGMENT_COST_NS_AT_3GHZ * ghz_scale))
            if seg.seq == self.rx.rcv_next:
                # In-order: copy payload into the socket buffer (BH copy).
                yield from ctx.memcpy(len(seg.data))
                self.rx.buffer.extend(seg.data)
                self.rx.rcv_next += len(seg.data)
                if self.rx.data_ready is not None and not self.rx.data_ready.triggered:
                    self.rx.data_ready.succeed()
            else:
                stack.counters.incr("tcp_out_of_order")
            # Delayed ACK: every second segment, but ack a sub-MSS segment
            # immediately (it is usually the tail of a burst — the PSH
            # heuristic), and arm a delayed-ack timer otherwise so an
            # even/odd mismatch never deadlocks the sender.
            self.rx.segs_since_ack += 1
            if (self.rx.segs_since_ack >= stack.ack_every
                    or len(seg.data) < stack.mss):
                self.rx.segs_since_ack = 0
                yield from self._send_ack(ctx)
            elif self.rx.segs_since_ack == 1:
                self.env.process(self._delayed_ack(), name="tcp.delack")
        else:
            yield from ctx.charge(int(ACK_COST_NS_AT_3GHZ * ghz_scale))
        if seg.ack > self.snd_una:
            self.snd_una = seg.ack
            self._unacked = [s for s in self._unacked
                             if s.seq + len(s.data) > self.snd_una]
            if self._window_open is not None and not self._window_open.triggered:
                self._window_open.succeed()
            if not self._ack_activity.triggered:
                self._ack_activity.succeed()

    def _send_ack(self, ctx: ExecContext) -> Generator:
        ack = TcpSegment(
            src_board=self.stack.board, src_port=self.port,
            dst_port=self.peer_port, seq=self.snd_next,
            ack=self.rx.rcv_next,
        )
        yield from self.stack._xmit(ctx, self.peer_board, ack)

    def _delayed_ack(self) -> Generator:
        yield self.env.timeout(self.stack.delack_ns)
        if self.stack.closed or self.rx.segs_since_ack == 0:
            return
        self.rx.segs_since_ack = 0
        ctx = AcquiringContext(self.env, self.stack.kernel.bh_core)
        yield from self._send_ack(ctx)

    def _retransmit_timer(self) -> Generator:
        """Go-back-N fallback for injected loss."""
        while True:
            yield self.env.timeout(self.stack.rto_ns)
            if self.stack.closed:
                return
            if self._unacked:
                self.stack.counters.incr("tcp_retransmit")
                ctx = AcquiringContext(self.env, self.stack.kernel.bh_core)
                for seg in list(self._unacked):
                    yield from self.stack._xmit(ctx, self.peer_board, seg)


class TcpStack:
    """Per-host TCP: demultiplexes ports, owns costs and windows."""

    def __init__(self, kernel: Kernel, window_bytes: int = 256 * 1024,
                 ack_every: int = 2, rto_ns: int = SECOND // 5,
                 delack_ns: int = 500_000):
        self.kernel = kernel
        self.env: Environment = kernel.env
        self.board = kernel.host.nic.address
        self.window_bytes = window_bytes
        self.ack_every = ack_every
        self.rto_ns = rto_ns
        self.delack_ns = delack_ns
        self.mss = kernel.host.nic.spec.mtu - IP_TCP_HEADER_BYTES
        self.counters = Counter()
        self.closed = False
        self._sockets: dict[int, TcpSocket] = {}
        kernel.ethernet.register_protocol(ETH_P_IP, self._rx)

    def open_socket(self, port: int, peer_board: str,
                    peer_port: int) -> TcpSocket:
        """Create an (already-established) connection endpoint.

        Connection setup (SYN handshake) is a one-round-trip constant that
        both stacks under comparison pay once; it is omitted.
        """
        if port in self._sockets:
            raise ValueError(f"port {port} in use on {self.board}")
        sock = TcpSocket(self, port, peer_board, peer_port)
        self._sockets[port] = sock
        self.env.process(sock._retransmit_timer(), name=f"tcp.rto.{port}")
        return sock

    def close(self) -> None:
        self.closed = True

    def _xmit(self, ctx: ExecContext, dst_board: str,
              seg: TcpSegment) -> Generator:
        yield from self.kernel.ethernet.xmit(
            ctx, dst_board, seg, seg.wire_payload_bytes, ethertype=ETH_P_IP
        )
        if seg.data:
            self.counters.incr("tcp_segments_sent")
            self.counters.incr("tcp_bytes_sent", len(seg.data))
        else:
            self.counters.incr("tcp_acks_sent")

    def _rx(self, frame: EthernetFrame, ctx: ExecContext) -> Generator:
        seg = frame.payload
        if not isinstance(seg, TcpSegment):
            self.counters.incr("tcp_rx_bogus")
            return
        sock = self._sockets.get(seg.dst_port)
        if sock is None:
            self.counters.incr("tcp_rx_no_port")
            return
        yield from sock._on_segment(ctx, seg)
