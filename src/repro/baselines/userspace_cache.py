"""Baseline: user-space registration cache via malloc/munmap interception.

This is the mechanism Open MPI and MVAPICH used before MMU notifiers
existed (Sections 2.1 and 5): the MPI library interposes on ``free`` /
``munmap`` symbols and invalidates its registration cache when the
application releases memory.  The paper lists its failure modes:

* it only works for **dynamically linked** programs using the standard
  allocator — a static binary or a custom malloc bypasses the hooks, the
  cache keeps stale translations, and transfers silently touch the wrong
  physical pages;
* the hooks fire on **every** deallocation, however tiny and however
  unrelated to communication, adding overhead to the application's
  allocation path.

The implementation wraps a :class:`~repro.kernel.allocator.Malloc` and an
Open-MX-style region table *without* MMU notifiers, so the tests (and the
ablation experiment) can demonstrate both the stale-translation corruption
and the per-free hook overhead that the kernel-based design eliminates.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Generator
from dataclasses import dataclass

from repro.kernel.context import ExecContext
from repro.kernel.kernel import UserProcess
from repro.sim import Counter

__all__ = ["HookedAllocator", "UserspaceRegistrationCache"]

# Cost of one interposed free/munmap hook: symbol indirection plus the
# cache lookup the hook performs (measured values from the era are in the
# hundreds of nanoseconds).
HOOK_COST_NS = 300


@dataclass(frozen=True)
class _Entry:
    region_id: int
    va: int
    length: int


class UserspaceRegistrationCache:
    """An LRU registration cache invalidated from user-space hooks."""

    def __init__(self, declare: Callable[[ExecContext, int, int], Generator],
                 destroy: Callable[[ExecContext, int], Generator],
                 capacity: int = 64, counters: Counter | None = None):
        self._declare = declare
        self._destroy = destroy
        self.capacity = capacity
        self._lru: OrderedDict[tuple[int, int], _Entry] = OrderedDict()
        self.counters = counters if counters is not None else Counter()

    def get(self, ctx: ExecContext, va: int, length: int) -> Generator:
        """Look up or register (va, length); returns the region id."""
        key = (va, length)
        entry = self._lru.get(key)
        if entry is not None:
            self._lru.move_to_end(key)
            self.counters.incr("uscache_hit")
            return entry.region_id
        self.counters.incr("uscache_miss")
        if len(self._lru) >= self.capacity:
            _, victim = self._lru.popitem(last=False)
            yield from self._destroy(ctx, victim.region_id)
            self.counters.incr("uscache_evict")
        rid = yield from self._declare(ctx, va, length)
        self._lru[key] = _Entry(rid, va, length)
        return rid

    def invalidate_range(self, ctx: ExecContext, start: int,
                         end: int) -> Generator:
        """The free/munmap hook: drop overlapping entries."""
        victims = [
            key for key, e in self._lru.items()
            if e.va < end and start < e.va + e.length
        ]
        for key in victims:
            entry = self._lru.pop(key)
            yield from self._destroy(ctx, entry.region_id)
            self.counters.incr("uscache_invalidate")

    def __len__(self) -> int:
        return len(self._lru)


class HookedAllocator:
    """A process allocator with interposed deallocation hooks.

    ``hooks_active`` models whether symbol interception actually engaged:
    True for a dynamically-linked program on the standard allocator, False
    for static linking / custom malloc — in which case frees silently skip
    the cache invalidation (the unreliability the paper calls out).
    """

    def __init__(self, proc: UserProcess, cache: UserspaceRegistrationCache,
                 hooks_active: bool = True):
        self.proc = proc
        self.cache = cache
        self.hooks_active = hooks_active
        self.hook_invocations = 0

    def malloc(self, size: int) -> int:
        return self.proc.malloc(size)

    def free(self, ctx: ExecContext, addr: int) -> Generator:
        """Free with the interposition hook (a process generator)."""
        alloc = self.proc.heap.allocation(addr)
        if alloc is None:
            raise ValueError(f"free of unknown pointer {addr:#x}")
        if self.hooks_active:
            # The hook runs on EVERY deallocation, communication-related
            # or not — that is its documented overhead.
            self.hook_invocations += 1
            yield from ctx.charge(HOOK_COST_NS)
            yield from self.cache.invalidate_range(
                ctx, alloc.addr, alloc.addr + alloc.size
            )
        self.proc.free(addr)
