"""Memory-registration cost models of contemporary high-speed networks.

Section 2.1 of the paper surveys what registration costs on the hardware
of the era, citing measured figures:

* **InfiniBand (Mellanox)** — "registration may cost up to 100 µs ...
  since the processor has to write translations to the NIC" [Mietke et
  al., Euro-Par 2006]: pin + per-page PIO writes of the translation table.
* **Myrinet/GM** — "deregistration may also reach 200 µs ... because of
  translation synchronization between the NIC and the operating system"
  [Goglin et al., HSLN 2004]: cheap-ish registration, expensive dereg.
* **Myrinet/MX** — "lets the NIC read translations from the host by DMA
  on demand, causing the host overhead to be much lower": registration is
  pinning plus building a host-side table.
* **Open-MX** — no NIC, no translation table at all: pinning is the whole
  cost (Table 1), which is what makes the paper's decoupled model viable.

These are *cost models* (closed-form, per the cited measurements), used to
reproduce the Section 2.1 comparison quantitatively; the full packet-level
simulation only implements the Open-MX variant, the paper's subject.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.memory import PAGE_SIZE
from repro.hw.specs import CpuSpec, XEON_E5460
from repro.kernel.pinning import PIN_FRACTION

__all__ = [
    "REGISTRATION_MODELS",
    "RegistrationCost",
    "RegistrationModel",
    "registration_cycle",
]


@dataclass(frozen=True)
class RegistrationModel:
    """Affine register/deregister cost model on top of pinning."""

    name: str
    # Extra costs beyond the pin/unpin itself.
    register_base_ns: int
    register_per_page_ns: int
    deregister_base_ns: int
    deregister_per_page_ns: int
    notes: str = ""


# Parameterized so that the paper's headline figures emerge for the buffer
# sizes the cited studies used (hundreds of pages):
# - IB: ~100 us to register a few hundred pages (PIO translation writes),
# - GM: ~200 us to deregister (host/NIC table synchronization),
# - MX: a few us of host-side table setup; the NIC fetches on demand.
REGISTRATION_MODELS: dict[str, RegistrationModel] = {
    "infiniband": RegistrationModel(
        name="InfiniBand (host-programmed NIC table)",
        register_base_ns=10_000,
        register_per_page_ns=350,  # PIO write per translation entry
        deregister_base_ns=5_000,
        deregister_per_page_ns=50,
        notes="register up to ~100us [Mietke06]",
    ),
    "gm": RegistrationModel(
        name="Myrinet/GM (synchronized deregistration)",
        register_base_ns=5_000,
        register_per_page_ns=120,
        deregister_base_ns=60_000,
        deregister_per_page_ns=550,  # host/NIC translation sync
        notes="deregister up to ~200us [Goglin04]",
    ),
    "mx": RegistrationModel(
        name="Myrinet/MX (NIC fetches translations on demand)",
        register_base_ns=1_500,
        register_per_page_ns=25,  # build the host-side table only
        deregister_base_ns=800,
        deregister_per_page_ns=10,
        notes="host overhead much lower; NIC DMA-reads on demand",
    ),
    "open-mx": RegistrationModel(
        name="Open-MX (pinning only, no NIC table)",
        register_base_ns=0,
        register_per_page_ns=0,
        deregister_base_ns=0,
        deregister_per_page_ns=0,
        notes="the paper's stack: pinning is the whole cost",
    ),
}


@dataclass(frozen=True)
class RegistrationCost:
    model: str
    nbytes: int
    register_ns: int
    deregister_ns: int

    @property
    def total_ns(self) -> int:
        return self.register_ns + self.deregister_ns


def registration_cycle(model_key: str, nbytes: int,
                       cpu: CpuSpec = XEON_E5460) -> RegistrationCost:
    """Full register+deregister cycle cost for a buffer of ``nbytes``.

    Every model pays the underlying pin/unpin (Table 1); the NIC-table
    models add their per-model costs on top.
    """
    model = REGISTRATION_MODELS[model_key]
    npages = (nbytes + PAGE_SIZE - 1) // PAGE_SIZE
    pin_total = cpu.pin_unpin_cost_ns(npages)
    pin_ns = int(pin_total * PIN_FRACTION)
    unpin_ns = pin_total - pin_ns
    return RegistrationCost(
        model=model_key,
        nbytes=nbytes,
        register_ns=pin_ns + model.register_base_ns
        + model.register_per_page_ns * npages,
        deregister_ns=unpin_ns + model.deregister_base_ns
        + model.deregister_per_page_ns * npages,
    )
