"""Baseline: MPICH-GM / Open MPI style pipelined registration.

Section 5 contrasts the paper's driver-level overlap with the older
library-level approach: split a large message into chunks and overlap the
registration (pinning) of chunk *k+1* with the transmission of chunk *k*.
Its drawbacks, which the paper lists and this model reproduces:

* the first chunk cannot leave before its own pin completes (pinning stays
  on the critical path for the pipeline head),
* the message travels as several smaller transfers, each paying the full
  rendezvous handshake, which reduces peak throughput,
* the chunking/management protocol adds library complexity (modelled as a
  per-chunk bookkeeping cost).

The implementation composes the existing Open-MX stack in PIN_PER_COMM
mode: each chunk is an independent rendezvous send whose pinning the
library schedules one chunk ahead.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass

from repro.openmx.lib import OmxLib, OmxRequest

__all__ = ["PipelinedSender", "PipelineResult"]

# Library-side bookkeeping per pipeline chunk (fragment descriptors,
# completion tracking).
CHUNK_MANAGEMENT_NS = 400


@dataclass(frozen=True)
class PipelineResult:
    chunks: int
    requests: list[OmxRequest]


class PipelinedSender:
    """Sends a large buffer as a pipeline of chunked rendezvous messages.

    ``depth`` is the number of chunks in flight: the historical protocol
    keeps two — pin the next chunk while the wire carries the current one.
    """

    def __init__(self, lib: OmxLib, chunk_bytes: int = 128 * 1024,
                 depth: int = 2):
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.lib = lib
        self.chunk_bytes = chunk_bytes
        self.depth = depth

    def _chunks(self, nbytes: int) -> list[tuple[int, int]]:
        out = []
        offset = 0
        while offset < nbytes:
            out.append((offset, min(self.chunk_bytes, nbytes - offset)))
            offset += self.chunk_bytes
        return out

    def send(self, va: int, nbytes: int, dst_board: str, dst_endpoint: int,
             tag_base: int) -> Generator:
        """Process: pipelined send; returns a :class:`PipelineResult`.

        Chunk k+1's isend (which pins synchronously in PIN_PER_COMM mode)
        is issued while chunk k is still on the wire — but never more than
        ``depth`` chunks are outstanding, chunk 0's pin is exposed, and
        every chunk pays its own rendezvous.
        """
        ctx = self.lib.proc.user_context()
        chunks = self._chunks(nbytes)
        requests: list[OmxRequest] = []
        inflight: list[OmxRequest] = []
        for index, (offset, length) in enumerate(chunks):
            if len(inflight) >= self.depth:
                yield from self.lib.wait(inflight.pop(0))
            yield from ctx.charge(CHUNK_MANAGEMENT_NS)
            req = yield from self.lib.isend(
                va + offset, length, dst_board, dst_endpoint, tag_base + index
            )
            requests.append(req)
            inflight.append(req)
        for req in inflight:
            yield from self.lib.wait(req)
        return PipelineResult(chunks=len(chunks), requests=requests)

    def recv(self, va: int, nbytes: int, tag_base: int) -> Generator:
        """Process: matching chunked receive (same bounded window)."""
        chunks = self._chunks(nbytes)
        requests: list[OmxRequest] = []
        inflight: list[OmxRequest] = []
        for index, (offset, length) in enumerate(chunks):
            if len(inflight) >= self.depth:
                yield from self.lib.wait(inflight.pop(0))
            req = yield from self.lib.irecv(va + offset, length,
                                            tag_base + index)
            requests.append(req)
            inflight.append(req)
        for req in inflight:
            yield from self.lib.wait(req)
        return PipelineResult(chunks=len(chunks), requests=requests)
