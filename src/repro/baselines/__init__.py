"""Related-work baselines the paper compares against (Section 5)."""

from .pipelined_reg import PipelinedSender, PipelineResult
from .registration_models import (
    REGISTRATION_MODELS,
    RegistrationCost,
    RegistrationModel,
    registration_cycle,
)
from .tcp import TcpSegment, TcpSocket, TcpStack
from .userspace_cache import HookedAllocator, UserspaceRegistrationCache

__all__ = [
    "HookedAllocator",
    "REGISTRATION_MODELS",
    "RegistrationCost",
    "RegistrationModel",
    "TcpSegment",
    "TcpSocket",
    "TcpStack",
    "registration_cycle",
    "PipelineResult",
    "PipelinedSender",
    "UserspaceRegistrationCache",
]
