"""Shared utilities: units, formatting, reporting."""

from .units import (
    GB,
    GIB,
    KB,
    KIB,
    MB,
    MIB,
    MICROSECOND,
    MILLISECOND,
    SECOND,
    fmt_rate_mib_s,
    fmt_size,
    fmt_time,
    gbit_rate_bytes_per_sec,
    throughput_mib_s,
    transfer_time_ns,
)

__all__ = [
    "GB",
    "GIB",
    "KB",
    "KIB",
    "MB",
    "MIB",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "fmt_rate_mib_s",
    "fmt_size",
    "fmt_time",
    "gbit_rate_bytes_per_sec",
    "throughput_mib_s",
    "transfer_time_ns",
]
