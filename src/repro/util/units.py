"""Unit helpers: sizes, times and rates.

All simulation time is integer nanoseconds; all sizes are integer bytes.
Rates convert between the two.  Keeping conversions in one place avoids the
classic GB-vs-GiB and Gb-vs-GB mistakes that plague network modelling.
"""

from __future__ import annotations

__all__ = [
    "GB",
    "GIB",
    "KB",
    "KIB",
    "MB",
    "MIB",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "bytes_per_ns",
    "fmt_rate_mib_s",
    "fmt_size",
    "fmt_time",
    "gbit_rate_bytes_per_sec",
    "throughput_mib_s",
    "transfer_time_ns",
]

KB = 1000
MB = 1000**2
GB = 1000**3
KIB = 1024
MIB = 1024**2
GIB = 1024**3

MICROSECOND = 1_000
MILLISECOND = 1_000_000
SECOND = 1_000_000_000


def gbit_rate_bytes_per_sec(gbits: float) -> float:
    """Link rate in bytes/second for a given gigabit/s figure (10 for 10GigE)."""
    return gbits * 1e9 / 8.0


def bytes_per_ns(bytes_per_sec: float) -> float:
    return bytes_per_sec / 1e9


def transfer_time_ns(nbytes: int, bytes_per_sec: float) -> int:
    """Integer nanoseconds to move ``nbytes`` at the given rate (ceiling)."""
    if bytes_per_sec <= 0:
        raise ValueError(f"rate must be positive, got {bytes_per_sec}")
    ns = nbytes * 1e9 / bytes_per_sec
    return int(ns) + (0 if ns == int(ns) else 1)


def throughput_mib_s(nbytes: int, elapsed_ns: int) -> float:
    """Throughput in MiB/s, the unit of the paper's figures 6 and 7."""
    if elapsed_ns <= 0:
        return 0.0
    return nbytes / (elapsed_ns / 1e9) / MIB


def fmt_size(nbytes: int) -> str:
    """Human string using the paper's conventions (64kB, 1MB, 16MB)."""
    if nbytes >= MIB and nbytes % MIB == 0:
        return f"{nbytes // MIB}MB"
    if nbytes >= KIB and nbytes % KIB == 0:
        return f"{nbytes // KIB}kB"
    return f"{nbytes}B"


def fmt_time(ns: int) -> str:
    if ns >= SECOND:
        return f"{ns / SECOND:.3f}s"
    if ns >= MILLISECOND:
        return f"{ns / MILLISECOND:.3f}ms"
    if ns >= MICROSECOND:
        return f"{ns / MICROSECOND:.2f}us"
    return f"{ns}ns"


def fmt_rate_mib_s(rate: float) -> str:
    return f"{rate:8.1f} MiB/s"
