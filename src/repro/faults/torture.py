"""Registration-cache torture suite: adversarial pin-path workloads.

Where :mod:`repro.faults.chaos` storms the *network* while a light VM-churn
process runs in the background, the torture harness attacks the **pinning
machinery itself**: every episode is chosen to stress a specific seam of the
decoupled-pinning design —

* **fork/COW storms** — ``fork(2)`` children share the communication
  buffers copy-on-write while transfers are in flight; parent and child
  writes break the shares, firing MMU notifiers into mid-pin regions
  (the COW-vs-GUP seam: pinned pages are eagerly copied at fork, shared
  pages break on first write);
* **malloc-reuse thrash** — idle buffers are freed and re-mallocʼd in LIFO
  storms so the same virtual addresses come back with different backing,
  churning the user-space region cache across its LRU boundary (the cache
  capacity is deliberately tiny here);
* **overlapping-region pins** — two slices of one buffer are sent
  concurrently, so two regions pin the same frames and a mid-pin failure in
  one must roll back only its own references;
* **budget storms** — every endpoint pins a large region at once against a
  deliberately tiny pinned-page budget, driving reclaim, the fair admission
  queue (odd seeds), bounded waits, denials, and copy-through fallback;
* **VM churn** — swap-out / COW-duplicate / migration over busy and idle
  buffers, exactly the invalidation traffic MMU notifiers exist for.

After **every** episode the harness drains the simulation to quiescence and
runs the recovery oracle: zero leaked pinned frames (every pin reference
reachable from a live region), zero dangling notifier registrations, and —
at teardown — fully balanced pin accounting.  Recovery time (drain tail
after the last request completes) and fallback rate are recorded via
:mod:`repro.obs` histograms.

Everything is a pure function of ``(seed, steps)``; the run digest must be
byte-identical across repeats (CI gates on this).

CLI::

    python -m repro.faults.torture --seeds 25 --steps 400
    python -m repro.faults.torture --seed 7 --steps 120 --json
    python -m repro.faults.torture --until-failure --steps 200
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
import sys
from dataclasses import dataclass, field

from repro.cluster.builder import build_cluster
from repro.faults.invariants import InvariantChecker
from repro.faults.plan import FaultPlan
from repro.hw.memory import OutOfMemory
from repro.obs.metrics import MetricRegistry
from repro.openmx.config import OpenMXConfig, PinningMode
from repro.util.units import KIB, MILLISECOND

__all__ = ["TortureResult", "run_torture"]

# Message-size ladder: one eager class, three rendezvous classes up to 128
# pages — the large end is what collides with the pin budget.
SIZES = (16_000, 48 * KIB, 160_000, 512 * KIB)
POOL_BUFFERS = 3  # communication buffers per process
BUF_SIZE = 512 * KIB  # 128 pages each
PROCS_PER_HOST = 3
MAX_CHILDREN = 4  # live fork children per process
# Pinned-page budget per host: less than half of what a budget storm asks
# for (6 concurrent 128-page regions per host), so exhaustion is the norm.
PIN_BUDGET_PAGES = 192
PAIR_BUDGET_NS = 100 * MILLISECOND  # per-transfer give-up budget
EPISODE_BUDGET_NS = 4 * PAIR_BUDGET_NS  # hard liveness deadline per episode

EPISODES = ("burst", "fork_storm", "realloc_thrash", "overlap_pair",
            "budget_storm", "vm_churn")


@dataclass
class TortureResult:
    seed: int
    steps: int
    mode: str
    queue: bool
    validate: bool
    finished: bool
    elapsed_ns: int
    transfers_ok: int
    transfers_degraded: int
    episode_counts: dict = field(default_factory=dict)
    stats: dict = field(default_factory=dict)
    recovery_ns: dict = field(default_factory=dict)  # p50/p99/max
    fallback_rate: float = 0.0
    injections: dict = field(default_factory=dict)
    violations: list = field(default_factory=list)
    digest: str = ""

    @property
    def clean(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "steps": self.steps,
            "mode": self.mode,
            "queue": self.queue,
            "validate": self.validate,
            "finished": self.finished,
            "elapsed_ns": self.elapsed_ns,
            "transfers_ok": self.transfers_ok,
            "transfers_degraded": self.transfers_degraded,
            "episode_counts": dict(self.episode_counts),
            "stats": dict(self.stats),
            "recovery_ns": dict(self.recovery_ns),
            "fallback_rate": self.fallback_rate,
            "injections": dict(self.injections),
            "violations": [str(v) for v in self.violations],
            "digest": self.digest,
        }


def _pattern(nbytes: int, salt: int) -> bytes:
    block = bytes((i + salt) % 256 for i in range(256))
    return (block * (nbytes // 256 + 1))[:nbytes]


@dataclass
class _Buffer:
    va: int
    size: int
    busy: int = 0  # refcount: overlapping sends share one buffer


def _torture_plan(seed: int) -> FaultPlan:
    """Light, pin-focused fault plan: no network loss (liveness stays
    tight), transient pin failures on even seeds, slow pins on every
    fourth."""
    return FaultPlan(
        seed=seed,
        pin_fail_prob=0.2 if seed % 2 == 0 else 0.0,
        pin_max_failures=6,
        pin_delay_ns=10_000 if seed % 4 == 0 else 0,
    )


def run_torture(seed: int, steps: int,
                mode: PinningMode | None = None) -> TortureResult:
    """One seeded torture run; returns the result without raising."""
    rng = random.Random(seed * 2654435761 + 97)
    if mode is None:
        mode = list(PinningMode)[seed % len(PinningMode)]
    queue_on = seed % 2 == 1
    config = OpenMXConfig(
        pinning_mode=mode,
        resend_timeout_ns=2 * MILLISECOND,
        max_resend_rounds=4,
        # Tiny cache: the size ladder alone overflows it, so every seed
        # crosses the LRU boundary constantly.
        region_cache_capacity=4,
        pin_queue_enabled=queue_on,
        pin_queue_wait_max_ns=500_000,
        pin_queue_max_share=0.75 if seed % 4 == 3 else 1.0,
        region_cache_validate=seed % 3 == 0,
    )
    registry = MetricRegistry()
    cluster = build_cluster(procs_per_host=PROCS_PER_HOST, config=config,
                            trace=False, metrics=registry)
    for node in cluster.nodes:
        node.host.memory.max_pinned = PIN_BUDGET_PAGES
    plan = _torture_plan(seed)
    applied = plan.apply(cluster)
    checker = InvariantChecker(cluster)
    env = cluster.env
    nhosts = len(cluster.nodes)

    recovery_hist = registry.histogram(
        "torture_recovery_ns",
        "per-episode recovery: attack start -> full quiescence",
        sample_capacity=8192)

    pools: list[list[list[_Buffer]]] = []  # [node][proc][buffer]
    for node in cluster.nodes:
        per_node = []
        for proc in node.procs:
            per_node.append([_Buffer(proc.malloc(BUF_SIZE), BUF_SIZE)
                             for _ in range(POOL_BUFFERS)])
        pools.append(per_node)

    children: dict[tuple[int, int], list] = {
        (n, p): [] for n in range(nhosts) for p in range(PROCS_PER_HOST)
    }
    completed: list[tuple[str, object]] = []
    stats = {"forks": 0, "fork_oom": 0, "children_destroyed": 0,
             "reallocs": 0, "vm_ops": 0, "child_writes": 0,
             "parent_writes": 0}
    episode_counts = {name: 0 for name in EPISODES}
    episode_log: list[str] = []

    # -- transfer machinery (chaos-style, with pair-level recovery) --------
    def spawn_transfer(label: str, src: tuple[int, int], dst: tuple[int, int],
                       sbuf: _Buffer, soff: int, rbuf: _Buffer,
                       nbytes: int, tag: int, data: bytes | None = None):
        sl = cluster.lib(*src)
        rl = cluster.lib(*dst)
        rp = cluster.nodes[dst[0]].procs[dst[1]]
        sbuf.busy += 1
        rbuf.busy += 1
        if data is None:
            data = _pattern(nbytes, tag * 131 + seed)
            cluster.nodes[src[0]].procs[src[1]].write(sbuf.va + soff, data)
        pair: dict[str, object] = {}

        def sender():
            req = yield from sl.isend(sbuf.va + soff, nbytes, rl.board,
                                      rl.endpoint_id, tag)
            pair["send"] = req
            yield from sl.wait(req)
            completed.append((f"send {label}", req))

        def receiver():
            req = yield from rl.irecv(rbuf.va, nbytes, tag)
            pair["recv"] = req
            yield from rl.wait(req)
            completed.append((f"recv {label}", req))
            if req.status == "ok":
                checker.check_payload(rp, rbuf.va, data, f"recv {label}")

        def transfer():
            both = env.all_of([env.process(sender(), name=f"tor.s{tag}"),
                               env.process(receiver(), name=f"tor.r{tag}")])
            budget = env.timeout(PAIR_BUDGET_NS)
            yield env.any_of([both, budget])
            if not both.triggered:
                # MX keeps no connection state: a sender that gave up never
                # tells the receiver.  Drain the sender's events, then cancel
                # the orphaned unmatched recv iff the send failed terminally.
                yield from sl.progress()
                sreq, rreq = pair.get("send"), pair.get("recv")
                if (sreq is not None and sreq.done and sreq.status != "ok"
                        and rreq is not None):
                    rl.cancel(rreq)
                yield both
            budget.cancel()
            sbuf.busy -= 1
            rbuf.busy -= 1

        return env.process(transfer(), name=f"tor.t{tag}")

    def pick_pair(prng) -> tuple[tuple[int, int], tuple[int, int]]:
        src_n = prng.randrange(nhosts)
        return ((src_n, prng.randrange(PROCS_PER_HOST)),
                (1 - src_n, prng.randrange(PROCS_PER_HOST)))

    def idle_buffer(node_i: int, proc_i: int, prng) -> _Buffer | None:
        bufs = [b for b in pools[node_i][proc_i] if b.busy == 0]
        return prng.choice(bufs) if bufs else None

    def vm_op(node_i: int, proc_i: int, buf: _Buffer, prng) -> None:
        """One VM-pressure event.  Busy buffers get only payload-safe ops
        (swap/COW/migrate preserve contents and skip or copy pinned frames);
        idle buffers additionally get the free+malloc reuse pattern."""
        proc = cluster.nodes[node_i].procs[proc_i]
        op = prng.randrange(4 if buf.busy == 0 else 3)
        if op == 0:
            proc.aspace.swap_out(buf.va, buf.size)
        elif op == 1:
            proc.aspace.cow_duplicate(buf.va, buf.size)
        elif op == 2:
            proc.aspace.migrate(buf.va, buf.size)
        else:
            proc.free(buf.va)
            buf.va = proc.malloc(buf.size)
            stats["reallocs"] += 1
        stats["vm_ops"] += 1

    def fork_child(step: int, node_i: int, proc_i: int, prng) -> None:
        key = (node_i, proc_i)
        if len(children[key]) >= MAX_CHILDREN:
            old = children[key].pop(0)
            old.aspace.destroy()
            stats["children_destroyed"] += 1
        parent = cluster.nodes[node_i].procs[proc_i]
        try:
            child = parent.fork(f"fork{step}.{node_i}.{proc_i}")
        except OutOfMemory:
            stats["fork_oom"] += 1
            return
        stats["forks"] += 1
        checker.extra_aspaces.append(child.aspace)
        children[key].append(child)
        # COW traffic on the communication buffers: the child scribbles on
        # its own view (breaking shares child-side), and the parent dirties
        # an idle buffer (breaking shares parent-side, which notifies and
        # invalidates any cached pinned region over it).
        buf = pools[node_i][proc_i][prng.randrange(POOL_BUFFERS)]
        child.write(buf.va, _pattern(8 * KIB, step + 7))
        stats["child_writes"] += 1
        ibuf = idle_buffer(node_i, proc_i, prng)
        if ibuf is not None:
            parent.write(ibuf.va, _pattern(8 * KIB, step + 11))
            stats["parent_writes"] += 1

    # -- episodes ----------------------------------------------------------
    def ep_burst(step: int, prng):
        """1-3 concurrent transfers with VM churn racing them."""
        procs = []
        for idx in range(prng.randrange(1, 4)):
            src, dst = pick_pair(prng)
            rbuf = idle_buffer(*dst, prng)
            sbuf = idle_buffer(*src, prng)
            if rbuf is None or sbuf is None:
                continue
            nbytes = prng.choice(SIZES)
            tag = step * 16 + idx + 1
            procs.append(spawn_transfer(
                f"step{step}.{idx} {src}->{dst} {nbytes}B",
                src, dst, sbuf, 0, rbuf, nbytes, tag))
        for _ in range(prng.randrange(0, 4)):
            yield env.timeout(20_000 + prng.randrange(80_000))
            node_i = prng.randrange(nhosts)
            proc_i = prng.randrange(PROCS_PER_HOST)
            buf = pools[node_i][proc_i][prng.randrange(POOL_BUFFERS)]
            vm_op(node_i, proc_i, buf, prng)
        if procs:
            yield env.all_of(procs)

    def ep_fork_storm(step: int, prng):
        """Forks racing an in-flight transfer; parent/child COW writes."""
        src, dst = pick_pair(prng)
        rbuf = idle_buffer(*dst, prng)
        sbuf = idle_buffer(*src, prng)
        procs = []
        if rbuf is not None and sbuf is not None:
            nbytes = prng.choice(SIZES[1:])  # rendezvous: regions pinned
            procs.append(spawn_transfer(
                f"step{step}.0 {src}->{dst} {nbytes}B fork",
                src, dst, sbuf, 0, rbuf, nbytes, step * 16 + 1))
        for k in range(prng.randrange(1, 4)):
            yield env.timeout(10_000 + prng.randrange(90_000))
            fork_child(step, prng.randrange(nhosts),
                       prng.randrange(PROCS_PER_HOST), prng)
        if procs:
            yield env.all_of(procs)

    def ep_realloc_thrash(step: int, prng):
        """LIFO free/malloc storms over idle buffers, then a transfer that
        lands on the recycled addresses (stale-cache bait)."""
        node_i = prng.randrange(nhosts)
        proc_i = prng.randrange(PROCS_PER_HOST)
        proc = cluster.nodes[node_i].procs[proc_i]
        idle = [b for b in pools[node_i][proc_i] if b.busy == 0]
        for buf in idle:
            proc.free(buf.va)
        for buf in reversed(idle):  # LIFO: addresses come back permuted
            buf.va = proc.malloc(buf.size)
            stats["reallocs"] += 1
        src = (node_i, proc_i)
        dst = (1 - node_i, prng.randrange(PROCS_PER_HOST))
        rbuf = idle_buffer(*dst, prng)
        if rbuf is not None and idle:
            nbytes = prng.choice(SIZES)
            yield from _wait_one(spawn_transfer(
                f"step{step}.0 {src}->{dst} {nbytes}B realloc",
                src, dst, idle[0], 0, rbuf, nbytes, step * 16 + 1))

    def ep_overlap_pair(step: int, prng):
        """Two overlapping slices of one buffer to two receivers: two
        regions pin the same frames concurrently."""
        src_n = prng.randrange(nhosts)
        src = (src_n, prng.randrange(PROCS_PER_HOST))
        dst_a = (1 - src_n, prng.randrange(PROCS_PER_HOST))
        dst_b = (1 - src_n, prng.randrange(PROCS_PER_HOST))
        rbuf_a = idle_buffer(*dst_a, prng)
        rbuf_b = idle_buffer(*dst_b, prng)
        if rbuf_a is None or rbuf_b is None or rbuf_a is rbuf_b:
            return
        sbuf = pools[src[0]][src[1]][prng.randrange(POOL_BUFFERS)]
        base = _pattern(BUF_SIZE, step * 131 + seed)
        cluster.nodes[src[0]].procs[src[1]].write(sbuf.va, base)
        len_a = prng.choice(SIZES[1:3])
        len_b = prng.choice(SIZES[1:3])
        off_b = prng.choice((0, 4 * KIB, 16 * KIB))  # overlaps [0, len_a)
        procs = [
            spawn_transfer(f"step{step}.0 {src}->{dst_a} {len_a}B ovl",
                           src, dst_a, sbuf, 0, rbuf_a, len_a,
                           step * 16 + 1, data=base[:len_a]),
            spawn_transfer(f"step{step}.1 {src}->{dst_b} {len_b}B ovl",
                           src, dst_b, sbuf, off_b, rbuf_b, len_b,
                           step * 16 + 2, data=base[off_b:off_b + len_b]),
        ]
        yield env.all_of(procs)

    def ep_budget_storm(step: int, prng):
        """Every endpoint sends 128 pages at once: 2x the host budget."""
        procs = []
        for proc_i in range(PROCS_PER_HOST):
            for src_n in range(nhosts):
                src = (src_n, proc_i)
                dst = (1 - src_n, proc_i)
                rbuf = idle_buffer(*dst, prng)
                sbuf = idle_buffer(*src, prng)
                if rbuf is None or sbuf is None:
                    continue
                tag = step * 16 + proc_i * 2 + src_n + 1
                procs.append(spawn_transfer(
                    f"step{step}.{proc_i * 2 + src_n} {src}->{dst} "
                    f"{BUF_SIZE}B storm",
                    src, dst, sbuf, 0, rbuf, BUF_SIZE, tag))
        if procs:
            yield env.all_of(procs)

    def ep_vm_churn(step: int, prng):
        """Pure VM pressure, no transfers: exercises idle-region unpin."""
        for _ in range(prng.randrange(3, 8)):
            node_i = prng.randrange(nhosts)
            proc_i = prng.randrange(PROCS_PER_HOST)
            buf = pools[node_i][proc_i][prng.randrange(POOL_BUFFERS)]
            vm_op(node_i, proc_i, buf, prng)
            yield env.timeout(5_000 + prng.randrange(20_000))

    def _wait_one(proc):
        yield env.all_of([proc])

    episode_fns = {"burst": ep_burst, "fork_storm": ep_fork_storm,
                   "realloc_thrash": ep_realloc_thrash,
                   "overlap_pair": ep_overlap_pair,
                   "budget_storm": ep_budget_storm, "vm_churn": ep_vm_churn}
    weights = {"burst": 0.30, "fork_storm": 0.15, "realloc_thrash": 0.15,
               "overlap_pair": 0.15, "budget_storm": 0.15, "vm_churn": 0.10}

    def pick_episode(prng) -> str:
        x = prng.random()
        acc = 0.0
        for name in EPISODES:
            acc += weights[name]
            if x < acc:
                return name
        return EPISODES[-1]

    # -- main loop: episode -> drain -> recovery oracle --------------------
    finished = True
    for step in range(steps):
        name = pick_episode(rng)
        episode_counts[name] += 1
        episode_log.append(f"{step}:{name}")
        ep_start = env.now
        ep = env.process(episode_fns[name](step, rng), name=f"tor.ep{step}")
        deadline = env.timeout(EPISODE_BUDGET_NS)
        env.run(until=env.any_of([ep, deadline]))
        if not ep.triggered:
            checker.check_workload_finished(
                False, f"episode {step} ({name}) stuck after "
                       f"{EPISODE_BUDGET_NS} ns at t={env.now}")
            finished = False
            break
        deadline.cancel()
        env.purge_cancelled()  # dead watchdog/budget timers must not
        env.run()              # stretch the drain; run to quiescence
        recovery_hist.observe(env.now - ep_start)
        # Recovery oracle: every episode must leave the machine consistent.
        checker.check_frame_leaks()
        checker.check_notifier_registrations()
        if not checker.clean:
            finished = False
            break

    if finished:
        for label, req in completed:
            checker.check_request_terminal(req, label)
        for n, lib in enumerate(cluster.all_libs()):
            checker.check_endpoint_quiescent(lib, f"lib{n}")
        for kids in children.values():
            for child in kids:
                child.aspace.destroy()
                stats["children_destroyed"] += 1

        def teardown():
            for lib in cluster.all_libs():
                yield from lib.close()

        env.run(until=env.process(teardown(), name="tor.teardown"))
        env.run()
        checker.check_pin_accounting()
        checker.check_frame_leaks()
        checker.check_notifier_registrations()

    ok = sum(1 for _, r in completed if r.status == "ok")
    degraded = sum(1 for _, r in completed if r.done and r.status != "ok")
    fallbacks = denied = waits = timeouts = stale_hits = 0
    for node in cluster.nodes:
        counts = node.driver.counters.as_dict()
        fallbacks += counts.get("pin_fallback_send", 0)
        fallbacks += counts.get("pin_fallback_recv", 0)
        denied += counts.get("pin_budget_denied", 0)
        stale_hits += counts.get("region_cache_stale_hit", 0)
        waits += node.kernel.pin.budget_waits
        timeouts += node.kernel.pin.budget_timeouts
    transfers = max(1, len(completed) // 2)
    stats.update({"pin_fallbacks": fallbacks, "pin_budget_denied": denied,
                  "budget_waits": waits, "budget_timeouts": timeouts,
                  "cache_stale_hits": stale_hits})

    digest = hashlib.sha256()
    digest.update(f"now={env.now} seed={seed} mode={mode.value} "
                  f"queue={queue_on} validate={config.region_cache_validate}"
                  f"\n".encode())
    digest.update((" ".join(episode_log) + "\n").encode())
    for label, req in sorted(completed, key=lambda c: c[0]):
        digest.update(f"{label} status={req.status}\n".encode())
    for node in cluster.nodes:
        counts = sorted(node.driver.counters.as_dict().items())
        pin = node.kernel.pin
        digest.update(
            f"{node.host.name} {counts} pins={pin.pins} "
            f"unpins={pin.unpins} pages={pin.pages_pinned} "
            f"failures={pin.pin_failures} waits={pin.budget_waits} "
            f"timeouts={pin.budget_timeouts} "
            f"pinned_now={node.host.memory.pinned_frames}\n".encode())
        for proc in node.procs:
            a = proc.aspace
            digest.update(
                f"{a.name} faults={a.faults} cow={a.cow_breaks} "
                f"swapins={a.swapins} forks={a.forks} "
                f"mallocs={proc.heap.mallocs} frees={proc.heap.frees}"
                f"\n".encode())
    digest.update((json.dumps(stats, sort_keys=True) + "\n").encode())

    return TortureResult(
        seed=seed, steps=steps, mode=mode.value, queue=queue_on,
        validate=config.region_cache_validate, finished=finished,
        elapsed_ns=env.now, transfers_ok=ok, transfers_degraded=degraded,
        episode_counts=episode_counts, stats=stats,
        recovery_ns={"p50": recovery_hist.percentile(50.0),
                     "p99": recovery_hist.percentile(99.0),
                     "n": recovery_hist.count},
        fallback_rate=round(fallbacks / transfers, 4),
        injections=applied.injection_counts(),
        violations=list(checker.violations),
        digest=digest.hexdigest(),
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.torture",
        description="Adversarial pin-path torture runs with a per-episode "
                    "recovery oracle.",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="single seed to run (default 0)")
    parser.add_argument("--seeds", type=int, metavar="N",
                        help="run seeds 0..N-1")
    parser.add_argument("--steps", type=int, default=60,
                        help="episodes per seed (default 60)")
    parser.add_argument("--mode", choices=[m.value for m in PinningMode],
                        help="pin mode (default: rotates by seed)")
    parser.add_argument("--json", action="store_true",
                        help="emit one JSON object per seed")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the seed fan-out")
    parser.add_argument("--until-failure", action="store_true",
                        help="run seeds upward from --seed until one "
                             "violates, then shrink it and print a repro "
                             "command")
    parser.add_argument("--max-seeds", type=int, default=None,
                        help="with --until-failure: give up after N seeds")
    args = parser.parse_args(argv)
    mode = PinningMode(args.mode) if args.mode else None

    if args.until_failure:
        from repro.faults.shrink import hunt_until_failure

        def runner(seed: int, steps: int):
            return run_torture(seed, steps, mode=mode)

        mode_flag = f" --mode {args.mode}" if args.mode else ""
        found = hunt_until_failure(
            runner, args.seed, args.steps, max_seeds=args.max_seeds,
            repro_command=lambda s, st: (
                f"python -m repro.faults.torture --seed {s} --steps {st}"
                + mode_flag),
        )
        return 1 if found is not None else 0

    seeds = range(args.seeds) if args.seeds is not None else [args.seed]
    from repro.experiments.parallel import parallel_map

    results = parallel_map(
        [(run_torture, {"seed": seed, "steps": args.steps, "mode": mode})
         for seed in seeds],
        jobs=args.jobs,
    )
    failures = 0
    for result in results:
        if args.json:
            print(json.dumps(result.as_dict()))
        else:
            verdict = "CLEAN" if result.clean else "VIOLATIONS"
            print(f"seed={result.seed:4d} mode={result.mode:13s} "
                  f"queue={'on ' if result.queue else 'off'} "
                  f"ok={result.transfers_ok:3d} "
                  f"degraded={result.transfers_degraded:3d} "
                  f"fallback={result.fallback_rate:6.3f} "
                  f"recovery_p99={result.recovery_ns.get('p99', 0):>9.0f}ns "
                  f"{verdict}")
            for v in result.violations:
                print(f"    {v}")
        if not result.clean:
            failures += 1
    if failures:
        print(f"{failures}/{len(results)} seed(s) violated invariants",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
