"""Fault plans: a declarative, seed-reproducible bundle of fault models.

A :class:`FaultPlan` is plain data — probabilities and knobs, no live RNG
state — so the same plan can be applied to any number of clusters and each
application gets fresh, identically-seeded model instances.  ``apply``
attaches network models to the cluster's fabric, the pin-fault hook to every
host's pin service, and RX-ring pressure to every NIC, and returns an
:class:`AppliedFaultPlan` for injection accounting.

``FaultPlan.sample(seed)`` draws a randomized-but-reproducible plan for the
chaos harness: every knob is a pure function of the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.faults.models import (
    BernoulliLoss,
    Duplicate,
    FrameMatch,
    GilbertElliott,
    PinFaults,
    Reorder,
)
from repro.obs.metrics import resolve_registry

__all__ = ["AppliedFaultPlan", "FaultPlan"]


@dataclass(frozen=True)
class FaultPlan:
    """Seeded fault configuration; all-zero means "no faults"."""

    seed: int = 0
    # Network: independent loss, bursty (Gilbert-Elliott) loss, reordering
    # via extra delay, duplication.
    bernoulli_loss: float = 0.0
    gilbert: tuple[float, float, float] | None = None  # (p_enter_bad, p_exit_bad, loss_bad)
    reorder_prob: float = 0.0
    reorder_delay_ns: int = 100_000
    duplicate_prob: float = 0.0
    # Per-flow / per-packet-type targeting (None: all frames).  Packet class
    # names, e.g. ("PullReply", "PullRequest").
    target_kinds: tuple[str, ...] | None = None
    # NIC: phantom-occupied RX descriptors (tail-drop pressure).
    ring_pressure: int = 0
    # Pin service: transient ENOMEM + slow-pin jitter.
    pin_fail_prob: float = 0.0
    pin_max_failures: int | None = None
    pin_delay_ns: int = 0
    pin_jitter_ns: int = 0
    # VM pressure cadence for the chaos harness (0: off).  The harness owns
    # the buffers, so it drives the actual swap-out/COW/migration events.
    vm_pressure_period_ns: int = 0

    # -- construction --------------------------------------------------------
    @classmethod
    def sample(cls, seed: int) -> "FaultPlan":
        """A randomized, reproducible plan: pure function of ``seed``."""
        rng = random.Random(seed ^ 0x5EED_FA17)
        gilbert = None
        if rng.random() < 0.5:
            gilbert = (round(rng.uniform(0.02, 0.1), 3),
                       round(rng.uniform(0.2, 0.5), 3),
                       round(rng.uniform(0.3, 0.7), 3))
        return cls(
            seed=seed,
            bernoulli_loss=rng.choice([0.0, 0.005, 0.02, 0.05]),
            gilbert=gilbert,
            reorder_prob=rng.choice([0.0, 0.02, 0.05]),
            reorder_delay_ns=rng.choice([50_000, 200_000]),
            duplicate_prob=rng.choice([0.0, 0.01, 0.03]),
            target_kinds=rng.choice([None, None, None,
                                     ("PullReply",),
                                     ("PullReply", "PullRequest"),
                                     ("EagerFrag", "Liback")]),
            ring_pressure=rng.choice([0, 0, 1000, 1016]),
            pin_fail_prob=rng.choice([0.0, 0.1, 0.3]),
            pin_max_failures=rng.choice([2, 4, 8]),
            pin_delay_ns=rng.choice([0, 20_000]),
            pin_jitter_ns=rng.choice([0, 50_000]),
            vm_pressure_period_ns=rng.choice([0, 500_000, 2_000_000]),
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    # -- application ---------------------------------------------------------
    def build_network_models(self) -> list:
        """Fresh network model instances (seeds derived from the plan's)."""
        match = (FrameMatch(kinds=self.target_kinds)
                 if self.target_kinds is not None else None)
        models = []
        if self.bernoulli_loss > 0.0:
            models.append(BernoulliLoss(self.bernoulli_loss,
                                        seed=self.seed * 4 + 1, match=match))
        if self.gilbert is not None:
            p_enter, p_exit, loss_bad = self.gilbert
            models.append(GilbertElliott(p_enter, p_exit, loss_bad,
                                         seed=self.seed * 4 + 2, match=match))
        if self.reorder_prob > 0.0:
            models.append(Reorder(self.reorder_prob, self.reorder_delay_ns,
                                  seed=self.seed * 4 + 3, match=match))
        if self.duplicate_prob > 0.0:
            models.append(Duplicate(self.duplicate_prob,
                                    seed=self.seed * 4 + 4, match=match))
        return models

    def build_pin_faults(self) -> PinFaults | None:
        if (self.pin_fail_prob <= 0.0 and self.pin_delay_ns <= 0
                and self.pin_jitter_ns <= 0):
            return None
        return PinFaults(fail_prob=self.pin_fail_prob,
                         max_failures=self.pin_max_failures,
                         delay_ns=self.pin_delay_ns,
                         jitter_ns=self.pin_jitter_ns,
                         seed=self.seed * 4 + 5)

    def apply(self, cluster) -> "AppliedFaultPlan":
        """Attach this plan's fault models to a built cluster."""
        registry = resolve_registry(getattr(cluster, "metrics", None))
        network = self.build_network_models()
        for model in network:
            model.bind_metrics(registry)
            cluster.fabric.add_fault_injector(model)
        pin = self.build_pin_faults()
        for node in cluster.nodes:
            if pin is not None:
                pin.bind_metrics(registry)
                node.kernel.pin.fault_hook = pin
            if self.ring_pressure > 0:
                nic = node.host.nic
                # Never shrink the ring below a few live descriptors.
                nic.ring_pressure = min(self.ring_pressure,
                                        nic.spec.rx_ring_entries - 8)
        return AppliedFaultPlan(plan=self, network=network, pin=pin)


@dataclass
class AppliedFaultPlan:
    """Live model instances attached to one cluster."""

    plan: FaultPlan
    network: list = field(default_factory=list)
    pin: PinFaults | None = None

    def injection_counts(self) -> dict[str, int]:
        counts = {m.name: m.injected for m in self.network}
        if self.pin is not None:
            counts[self.pin.name] = self.pin.injected
        return counts

    @property
    def total_injected(self) -> int:
        return sum(self.injection_counts().values())
