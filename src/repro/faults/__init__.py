"""repro.faults — seeded fault injection, invariant checking, chaos runs.

Three pieces:

* :mod:`repro.faults.models` — composable RNG-seeded fault models: network
  loss (independent and Gilbert–Elliott bursty), reordering, duplication,
  deterministic drop schedules, and pin-service faults (transient ENOMEM,
  slow-pin jitter);
* :mod:`repro.faults.plan` — :class:`FaultPlan`, a declarative seed-derived
  bundle of the above, applied to a cluster in one call;
* :mod:`repro.faults.invariants` + :mod:`repro.faults.chaos` — the protocol
  invariant checker (liveness, integrity, pin accounting) and the seeded
  chaos harness (``python -m repro.faults.chaos --seed N --steps M``).
"""

from repro.faults.invariants import InvariantChecker, Violation
from repro.faults.models import (
    BernoulliLoss,
    Blackout,
    DropNth,
    Duplicate,
    FaultModel,
    FrameMatch,
    GilbertElliott,
    PeriodicDrop,
    PinFaults,
    Reorder,
    payload_kind,
)
from repro.faults.plan import AppliedFaultPlan, FaultPlan

__all__ = [
    "AppliedFaultPlan",
    "BernoulliLoss",
    "Blackout",
    "DropNth",
    "Duplicate",
    "FaultModel",
    "FaultPlan",
    "FrameMatch",
    "GilbertElliott",
    "InvariantChecker",
    "PeriodicDrop",
    "PinFaults",
    "Reorder",
    "Violation",
    "payload_kind",
]
