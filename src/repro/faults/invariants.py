"""Protocol invariant checking for fault-injected runs.

The checker encodes what must hold *no matter which faults fired*:

* **liveness** — every submitted communication reaches a terminal status
  ("ok", "timeout", "error", "truncated") before the simulation deadline;
  a request left pending is a hang, the bug class the bounded retransmit
  loops exist to prevent;
* **integrity** — a receive that reports "ok" delivered byte-exact data;
* **pin accounting** — after the endpoints are torn down no pinned pages
  remain, no orphan frames leak, and every pin was matched by exactly one
  unpin (``PhysicalMemory.account_unpin`` raises on double-unpin during the
  run; the checker verifies the end-state balance).

Violations are collected, not raised, so a chaos sweep reports every broken
invariant of a seed at once; ``assert_clean`` turns them into a test failure.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["InvariantChecker", "Violation"]

TERMINAL_STATUSES = frozenset({"ok", "timeout", "error", "truncated",
                               "cancelled"})


@dataclass(frozen=True)
class Violation:
    invariant: str  # "liveness" | "integrity" | "pin_accounting"
    detail: str

    def __str__(self) -> str:  # pragma: no cover
        return f"[{self.invariant}] {self.detail}"


class InvariantChecker:
    """Accumulates invariant violations for one cluster run."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.violations: list[Violation] = []

    def _fail(self, invariant: str, detail: str) -> None:
        self.violations.append(Violation(invariant, detail))

    # -- liveness ------------------------------------------------------------
    def check_request_terminal(self, req, label: str) -> None:
        """The request must be done with a recognized terminal status."""
        if not req.done:
            self._fail("liveness", f"{label}: request never completed "
                                   f"(status={req.status!r})")
        elif req.status not in TERMINAL_STATUSES:
            self._fail("liveness", f"{label}: non-terminal status "
                                   f"{req.status!r} on a done request")

    def check_workload_finished(self, finished: bool, detail: str) -> None:
        if not finished:
            self._fail("liveness", detail)

    # -- integrity -------------------------------------------------------------
    def check_payload(self, proc, va: int, expected: bytes,
                      label: str) -> None:
        """An "ok" receive must have delivered byte-exact data."""
        got = proc.read(va, len(expected))
        if got != expected:
            first_bad = next(
                (i for i, (g, e) in enumerate(zip(got, expected)) if g != e),
                -1,
            )
            self._fail("integrity",
                       f"{label}: payload mismatch ({len(expected)} B, "
                       f"first bad byte at offset {first_bad})")

    # -- pin accounting ----------------------------------------------------------
    def check_pin_accounting(self) -> None:
        """After teardown: no pinned pages, no orphans, balanced counts."""
        for node in self.cluster.nodes:
            mem = node.host.memory
            host = node.host.name
            if mem.pinned_frames != 0:
                self._fail("pin_accounting",
                           f"{host}: {mem.pinned_frames} pages still pinned "
                           f"after teardown")
            for frame in mem.iter_used():
                if frame.pin_count != 0:
                    self._fail("pin_accounting",
                               f"{host}: frame {frame.pfn} pin_count="
                               f"{frame.pin_count} after teardown")
                    break
            for proc in node.procs:
                if proc.aspace.orphan_count != 0:
                    self._fail("pin_accounting",
                               f"{host}/{proc.aspace.name}: "
                               f"{proc.aspace.orphan_count} orphan frames "
                               f"leaked")

    def check_endpoint_quiescent(self, lib, label: str) -> None:
        """No driver-side protocol state may outlive the workload."""
        ep = lib.ep
        if ep.sends:
            self._fail("liveness",
                       f"{label}: {len(ep.sends)} send(s) still open "
                       f"(seqs {sorted(ep.sends)})")
        if ep.pulls:
            self._fail("liveness",
                       f"{label}: {len(ep.pulls)} pull(s) still open "
                       f"(handles {sorted(ep.pulls)})")
        if ep.eager_tx:
            self._fail("liveness",
                       f"{label}: {len(ep.eager_tx)} eager send(s) still "
                       f"awaiting ack")

    # -- reporting ----------------------------------------------------------------
    @property
    def clean(self) -> bool:
        return not self.violations

    def assert_clean(self) -> None:
        if self.violations:
            lines = "\n".join(str(v) for v in self.violations)
            raise AssertionError(
                f"{len(self.violations)} invariant violation(s):\n{lines}"
            )
