"""Protocol invariant checking for fault-injected runs.

The checker encodes what must hold *no matter which faults fired*:

* **liveness** — every submitted communication reaches a terminal status
  ("ok", "timeout", "error", "truncated") before the simulation deadline;
  a request left pending is a hang, the bug class the bounded retransmit
  loops exist to prevent;
* **integrity** — a receive that reports "ok" delivered byte-exact data;
* **pin accounting** — after the endpoints are torn down no pinned pages
  remain, no orphan frames leak, and every pin was matched by exactly one
  unpin (``PhysicalMemory.account_unpin`` raises on double-unpin during the
  run; the checker verifies the end-state balance).

Violations are collected, not raised, so a chaos sweep reports every broken
invariant of a seed at once; ``assert_clean`` turns them into a test failure.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["InvariantChecker", "Violation"]

TERMINAL_STATUSES = frozenset({"ok", "timeout", "error", "truncated",
                               "cancelled"})


@dataclass(frozen=True)
class Violation:
    invariant: str  # "liveness" | "integrity" | "pin_accounting"
    detail: str

    def __str__(self) -> str:  # pragma: no cover
        return f"[{self.invariant}] {self.detail}"


class InvariantChecker:
    """Accumulates invariant violations for one cluster run."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.violations: list[Violation] = []
        # Address spaces that live outside the cluster's process lists
        # (forked children owned by a workload); included in the orphan,
        # frame-leak and notifier audits.
        self.extra_aspaces: list = []

    def _fail(self, invariant: str, detail: str) -> None:
        self.violations.append(Violation(invariant, detail))

    # -- liveness ------------------------------------------------------------
    def check_request_terminal(self, req, label: str) -> None:
        """The request must be done with a recognized terminal status."""
        if not req.done:
            self._fail("liveness", f"{label}: request never completed "
                                   f"(status={req.status!r})")
        elif req.status not in TERMINAL_STATUSES:
            self._fail("liveness", f"{label}: non-terminal status "
                                   f"{req.status!r} on a done request")

    def check_workload_finished(self, finished: bool, detail: str) -> None:
        if not finished:
            self._fail("liveness", detail)

    # -- integrity -------------------------------------------------------------
    def check_payload(self, proc, va: int, expected: bytes,
                      label: str) -> None:
        """An "ok" receive must have delivered byte-exact data."""
        got = proc.read(va, len(expected))
        if got != expected:
            first_bad = next(
                (i for i, (g, e) in enumerate(zip(got, expected)) if g != e),
                -1,
            )
            self._fail("integrity",
                       f"{label}: payload mismatch ({len(expected)} B, "
                       f"first bad byte at offset {first_bad})")

    # -- pin accounting ----------------------------------------------------------
    def check_pin_accounting(self) -> None:
        """After teardown: no pinned pages, no orphans, balanced counts."""
        for node in self.cluster.nodes:
            mem = node.host.memory
            host = node.host.name
            if mem.pinned_frames != 0:
                self._fail("pin_accounting",
                           f"{host}: {mem.pinned_frames} pages still pinned "
                           f"after teardown")
            for frame in mem.iter_used():
                if frame.pin_count != 0:
                    self._fail("pin_accounting",
                               f"{host}: frame {frame.pfn} pin_count="
                               f"{frame.pin_count} after teardown")
                    break
            pin = node.kernel.pin
            if pin.reserved_pages != 0:
                self._fail("pin_accounting",
                           f"{host}: {pin.reserved_pages} budget pages still "
                           f"reserved after teardown")
            if pin.owner_footprint:
                self._fail("pin_accounting",
                           f"{host}: owner budget footprint not returned: "
                           f"{pin.owner_footprint}")
            for proc in node.procs:
                if proc.aspace.orphan_count != 0:
                    self._fail("pin_accounting",
                               f"{host}/{proc.aspace.name}: "
                               f"{proc.aspace.orphan_count} orphan frames "
                               f"leaked")
        for aspace in self.extra_aspaces:
            if aspace.orphan_count != 0:
                self._fail("pin_accounting",
                           f"{aspace.name}: {aspace.orphan_count} orphan "
                           f"frames leaked (forked child)")

    def check_frame_leaks(self) -> None:
        """Every pin reference must be reachable from a live pin record.

        Cross-checks the allocator's view (``frame.pin_count`` over every
        in-use frame) against the driver's view (frames attached to declared
        regions): a pinned frame no region points at is a leak — an unpin
        path dropped the record without dropping the reference — and a
        region frame whose pin_count disagrees with the number of regions
        holding it is double-accounting.  Only meaningful at quiescence (no
        pin/unpin generator mid-charge), e.g. after a drained episode or at
        teardown.
        """
        for node in self.cluster.nodes:
            host = node.host.name
            refs: dict[int, int] = {}
            for ep in node.driver.endpoints.values():
                for region in ep.regions.values():
                    for frame in region.frames:
                        if frame is not None:
                            refs[frame.pfn] = refs.get(frame.pfn, 0) + 1
            for frame in node.host.memory.iter_used():
                expected = refs.pop(frame.pfn, 0)
                if frame.pin_count != expected:
                    self._fail(
                        "pin_accounting",
                        f"{host}: frame {frame.pfn} pin_count="
                        f"{frame.pin_count} but {expected} live region "
                        f"reference(s) — "
                        + ("leaked pin" if frame.pin_count > expected
                           else "dangling region frame"))
            for pfn, count in refs.items():
                self._fail("pin_accounting",
                           f"{host}: region(s) hold {count} reference(s) to "
                           f"frame {pfn} which is not in use")

    def check_notifier_registrations(self) -> None:
        """Notifier chains must mirror the set of open endpoints.

        Each open endpoint registers exactly one MMU notifier on its
        process's address space; anything beyond that is a dangling
        registration (an endpoint closed without unregistering, or a fork
        child that inherited a chain it should not have).
        """
        for node in self.cluster.nodes:
            host = node.host.name
            for proc in node.procs:
                expected = sum(1 for ep in node.driver.endpoints.values()
                               if ep.proc is proc)
                got = len(proc.aspace.notifiers)
                if got != expected:
                    self._fail("pin_accounting",
                               f"{host}/{proc.aspace.name}: {got} notifier "
                               f"registration(s), {expected} open "
                               f"endpoint(s)")
        for aspace in self.extra_aspaces:
            if len(aspace.notifiers) != 0:
                self._fail("pin_accounting",
                           f"{aspace.name}: forked child has "
                           f"{len(aspace.notifiers)} notifier "
                           f"registration(s); expected none")

    def check_endpoint_quiescent(self, lib, label: str) -> None:
        """No driver-side protocol state may outlive the workload."""
        ep = lib.ep
        if ep.sends:
            self._fail("liveness",
                       f"{label}: {len(ep.sends)} send(s) still open "
                       f"(seqs {sorted(ep.sends)})")
        if ep.pulls:
            self._fail("liveness",
                       f"{label}: {len(ep.pulls)} pull(s) still open "
                       f"(handles {sorted(ep.pulls)})")
        if ep.eager_tx:
            self._fail("liveness",
                       f"{label}: {len(ep.eager_tx)} eager send(s) still "
                       f"awaiting ack")

    # -- reporting ----------------------------------------------------------------
    @property
    def clean(self) -> bool:
        return not self.violations

    def assert_clean(self) -> None:
        if self.violations:
            lines = "\n".join(str(v) for v in self.violations)
            raise AssertionError(
                f"{len(self.violations)} invariant violation(s):\n{lines}"
            )
