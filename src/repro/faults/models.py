"""Composable, RNG-seeded fault models.

Network models plug into :class:`repro.cluster.network.Fabric` via
``add_fault_injector`` — each sees every frame the switch forwards and
returns a :class:`~repro.cluster.network.FrameVerdict` (drop / duplicate /
delay) or ``None``.  :class:`PinFaults` plugs into
:class:`repro.kernel.pinning.PinService` via its ``fault_hook`` and injects
transient ENOMEM and latency jitter into ``get_user_pages``.

Every model draws from its own ``random.Random(seed)`` stream, so a fault
schedule is a pure function of (seed, sequence of questions asked) — reruns
of a deterministic simulation see identical faults.  Each model counts the
faults it actually injected (``injected``) and mirrors the count into the
``fault_injections`` obs counter once :meth:`FaultModel.bind_metrics` is
called (FaultPlan.apply does this).
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.cluster.network import FrameVerdict
from repro.hw.nic import EthernetFrame
from repro.obs.metrics import MetricRegistry

__all__ = [
    "BernoulliLoss",
    "Blackout",
    "DropNth",
    "Duplicate",
    "FaultModel",
    "FrameMatch",
    "GilbertElliott",
    "PeriodicDrop",
    "PinFaults",
    "Reorder",
    "payload_kind",
]


def payload_kind(frame: EthernetFrame) -> str:
    """Protocol-level frame class name (``PullReply``, ``Rndv``, ...)."""
    return type(frame.payload).__name__


class FrameMatch:
    """Per-flow / per-packet-type targeting filter for network models.

    ``src``/``dst`` select one direction of one flow (NIC addresses);
    ``kinds`` selects packet classes by name.  ``None`` fields match all.
    """

    def __init__(self, src: str | None = None, dst: str | None = None,
                 kinds: Iterable[str] | None = None):
        self.src = src
        self.dst = dst
        self.kinds = frozenset(kinds) if kinds is not None else None

    def __call__(self, frame: EthernetFrame) -> bool:
        if self.src is not None and frame.src != self.src:
            return False
        if self.dst is not None and frame.dst != self.dst:
            return False
        if self.kinds is not None and payload_kind(frame) not in self.kinds:
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover
        return (f"FrameMatch(src={self.src!r}, dst={self.dst!r}, "
                f"kinds={sorted(self.kinds) if self.kinds else None})")


class FaultModel:
    """Base: seeded RNG, injection accounting, optional metric mirror."""

    def __init__(self, seed: int = 0, match: FrameMatch | None = None,
                 name: str | None = None):
        self.rng = random.Random(seed)
        self.match = match
        self.name = name if name is not None else type(self).__name__
        self.injected = 0
        self._metric = None

    def bind_metrics(self, registry: MetricRegistry) -> None:
        self._metric = registry.counter(
            "fault_injections", "faults actually injected, by model",
            labelnames=("model",)).labels(model=self.name)

    def _record(self, n: int = 1) -> None:
        self.injected += n
        if self._metric is not None:
            self._metric.inc(n)

    def _matches(self, frame: EthernetFrame) -> bool:
        return self.match is None or self.match(frame)

    def on_frame(self, frame: EthernetFrame, now: int) -> FrameVerdict | None:
        return None


class BernoulliLoss(FaultModel):
    """Independent per-frame loss with probability ``prob``."""

    def __init__(self, prob: float, seed: int = 0,
                 match: FrameMatch | None = None, name: str | None = None):
        super().__init__(seed=seed, match=match, name=name)
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"loss probability must be in [0,1], got {prob}")
        self.prob = prob

    def on_frame(self, frame, now):
        if not self._matches(frame):
            return None
        if self.rng.random() < self.prob:
            self._record()
            return FrameVerdict(drop=True, drop_reason=self.name)
        return None


class GilbertElliott(FaultModel):
    """Two-state Markov (Gilbert–Elliott) bursty loss.

    The channel alternates between a *good* state (loss ``loss_good``,
    usually 0) and a *bad* state (loss ``loss_bad``); each frame first
    advances the state (``p_enter_bad`` / ``p_exit_bad`` transition
    probabilities), then rolls against the state's loss rate.  Produces the
    clustered losses that make fixed retransmission timers fire redundantly.
    """

    def __init__(self, p_enter_bad: float, p_exit_bad: float,
                 loss_bad: float, loss_good: float = 0.0, seed: int = 0,
                 match: FrameMatch | None = None, name: str | None = None):
        super().__init__(seed=seed, match=match, name=name)
        for p in (p_enter_bad, p_exit_bad, loss_bad, loss_good):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"probability out of [0,1]: {p}")
        self.p_enter_bad = p_enter_bad
        self.p_exit_bad = p_exit_bad
        self.loss_bad = loss_bad
        self.loss_good = loss_good
        self.bad = False

    def on_frame(self, frame, now):
        if not self._matches(frame):
            return None
        if self.bad:
            if self.rng.random() < self.p_exit_bad:
                self.bad = False
        elif self.rng.random() < self.p_enter_bad:
            self.bad = True
        loss = self.loss_bad if self.bad else self.loss_good
        if loss > 0.0 and self.rng.random() < loss:
            self._record()
            return FrameVerdict(drop=True, drop_reason=self.name)
        return None


class Reorder(FaultModel):
    """Reordering via extra delivery delay on a random subset of frames.

    A delayed frame overtakes nothing, but every *later* undelayed frame
    overtakes it — which is how the receive path sees out-of-order arrival
    (and what makes the optimistic gap detector fire spuriously).
    """

    def __init__(self, prob: float, delay_ns: int, seed: int = 0,
                 match: FrameMatch | None = None, name: str | None = None):
        super().__init__(seed=seed, match=match, name=name)
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"reorder probability must be in [0,1], got {prob}")
        if delay_ns <= 0:
            raise ValueError(f"delay_ns must be positive, got {delay_ns}")
        self.prob = prob
        self.delay_ns = delay_ns

    def on_frame(self, frame, now):
        if not self._matches(frame):
            return None
        if self.rng.random() < self.prob:
            self._record()
            # 1x..2x the configured delay, from the seeded stream.
            extra = self.delay_ns + self.rng.randrange(self.delay_ns)
            return FrameVerdict(extra_delay_ns=extra)
        return None


class Duplicate(FaultModel):
    """Deliver a second copy of a random subset of frames."""

    def __init__(self, prob: float, seed: int = 0,
                 match: FrameMatch | None = None, name: str | None = None):
        super().__init__(seed=seed, match=match, name=name)
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"duplicate probability must be in [0,1], got {prob}")
        self.prob = prob

    def on_frame(self, frame, now):
        if not self._matches(frame):
            return None
        if self.rng.random() < self.prob:
            self._record()
            return FrameVerdict(duplicate=True)
        return None


class DropNth(FaultModel):
    """Drop the frames at given 1-indexed positions among matching frames.

    The deterministic model the loss-recovery tests use ("drop the 3rd
    PullReply"); replaces the hand-rolled closure-over-a-counter drop rules.
    """

    def __init__(self, positions: Iterable[int],
                 match: FrameMatch | None = None, name: str | None = None):
        super().__init__(seed=0, match=match, name=name)
        self.positions = frozenset(positions)
        self.seen = 0

    def on_frame(self, frame, now):
        if not self._matches(frame):
            return None
        self.seen += 1
        if self.seen in self.positions:
            self._record()
            return FrameVerdict(drop=True, drop_reason=self.name)
        return None


class Blackout(FaultModel):
    """Drop every matching frame inside fixed time windows (link outage).

    Time-driven, unlike :class:`GilbertElliott` whose burst length is
    frame-driven: anything transmitted into the outage is wasted no matter
    how often it is retried — the scenario where a fixed retransmission
    timer burns redundant resends and exponential backoff pays off.
    """

    def __init__(self, windows: Iterable[tuple[int, int]],
                 match: FrameMatch | None = None, name: str | None = None):
        super().__init__(seed=0, match=match, name=name)
        self.windows = [(int(s), int(e)) for s, e in windows]
        for start, end in self.windows:
            if end <= start:
                raise ValueError(f"empty blackout window [{start}, {end})")

    def on_frame(self, frame, now):
        if not self._matches(frame):
            return None
        for start, end in self.windows:
            if start <= now < end:
                self._record()
                return FrameVerdict(drop=True, drop_reason=self.name)
        return None


class PeriodicDrop(FaultModel):
    """Drop every ``period``-th matching frame (phase-shifted)."""

    def __init__(self, period: int, phase: int = 0,
                 match: FrameMatch | None = None, name: str | None = None):
        super().__init__(seed=0, match=match, name=name)
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        self.period = period
        self.phase = phase % period
        self.seen = 0

    def on_frame(self, frame, now):
        if not self._matches(frame):
            return None
        self.seen += 1
        if self.seen % self.period == self.phase:
            self._record()
            return FrameVerdict(drop=True, drop_reason=self.name)
        return None


class PinFaults:
    """Pin-service fault hook: transient ENOMEM + slow-pin latency jitter.

    Plugs into ``PinService.fault_hook``.  Each pin attempt (per batch in
    the batched path) rolls against ``fail_prob``; at most ``max_failures``
    failures are ever injected (``None``: unlimited — persistent failure,
    the scenario the copy-through fallback exists for).  ``delay_ns`` plus
    up to ``jitter_ns`` of seeded jitter is charged per attempt, modelling
    a memory-pressured ``get_user_pages`` crawling through reclaim.
    """

    name = "PinFaults"

    def __init__(self, fail_prob: float = 0.0,
                 max_failures: int | None = None, delay_ns: int = 0,
                 jitter_ns: int = 0, seed: int = 0):
        if not 0.0 <= fail_prob <= 1.0:
            raise ValueError(f"fail_prob must be in [0,1], got {fail_prob}")
        self.rng = random.Random(seed)
        self.fail_prob = fail_prob
        self.max_failures = max_failures
        self.delay_ns = delay_ns
        self.jitter_ns = jitter_ns
        self.injected = 0
        self.delays_injected = 0
        self._metric = None

    def bind_metrics(self, registry: MetricRegistry) -> None:
        self._metric = registry.counter(
            "fault_injections", "faults actually injected, by model",
            labelnames=("model",)).labels(model=self.name)

    def pin_delay_ns(self, npages: int) -> int:
        if self.delay_ns <= 0 and self.jitter_ns <= 0:
            return 0
        extra = self.delay_ns
        if self.jitter_ns > 0:
            extra += self.rng.randrange(self.jitter_ns)
        if extra > 0:
            self.delays_injected += 1
        return extra

    def pin_should_fail(self) -> bool:
        if self.fail_prob <= 0.0:
            return False
        if (self.max_failures is not None
                and self.injected >= self.max_failures):
            return False
        if self.rng.random() < self.fail_prob:
            self.injected += 1
            if self._metric is not None:
                self._metric.inc()
            return True
        return False
