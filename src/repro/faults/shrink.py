"""Failure shrinking for seeded fault harnesses (chaos, torture).

When a ``--until-failure`` hunt lands on a violating seed, the raw repro is
often huge (hundreds of steps).  :func:`shrink_failure` minimizes it the way
property-testing shrinkers do, exploiting that every run is a pure function
of ``(seed, steps)``:

1. binary-search the smallest failing step count for the seed (invariant:
   the high end of the bracket always fails, so the result is exact for
   monotone failures and still-failing for flaky ones);
2. scan a window of nearby smaller seeds at that step count and keep the
   smallest one that still fails (different seeds often hit the same bug
   with a shorter fault plan).

The result is printed as a copy-pasteable repro command.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["hunt_until_failure", "shrink_failure"]


def shrink_failure(
    run: Callable[[int, int], object],
    seed: int,
    steps: int,
    *,
    min_steps: int = 1,
    seed_scan: int = 8,
    log: Callable[[str], None] = lambda _: None,
) -> tuple[int, int]:
    """Shrink a known-failing ``(seed, steps)``; returns the smaller pair.

    ``run(seed, steps)`` must return a result object with a ``clean``
    attribute (False = invariant violation).  The caller guarantees
    ``run(seed, steps)`` fails; this function never returns a clean pair.
    """
    lo, hi = min_steps, steps
    while lo < hi:
        mid = (lo + hi) // 2
        log(f"shrink: seed={seed} steps={mid} ...")
        if not run(seed, mid).clean:
            hi = mid
        else:
            lo = mid + 1
    best_steps = hi
    best_seed = seed
    for candidate in range(max(0, seed - seed_scan), seed):
        log(f"shrink: seed={candidate} steps={best_steps} ...")
        if not run(candidate, best_steps).clean:
            best_seed = candidate
            break
    return best_seed, best_steps


def hunt_until_failure(
    run: Callable[[int, int], object],
    start_seed: int,
    steps: int,
    *,
    max_seeds: int | None = None,
    repro_command: Callable[[int, int], str] = None,
    log: Callable[[str], None] = print,
) -> tuple[int, int] | None:
    """Run seeds ``start_seed, start_seed+1, ...`` until one violates.

    On failure, shrinks it and logs a repro command; returns the shrunk
    ``(seed, steps)``.  Returns None if ``max_seeds`` seeds all ran clean.
    """
    seed = start_seed
    tried = 0
    while max_seeds is None or tried < max_seeds:
        result = run(seed, steps)
        if result.clean:
            log(f"seed={seed} steps={steps} clean")
        else:
            log(f"seed={seed} steps={steps} FAILED "
                f"({len(result.violations)} violation(s)); shrinking ...")
            best = shrink_failure(run, seed, steps, log=log)
            if repro_command is not None:
                log(f"repro: {repro_command(*best)}")
            return best
        seed += 1
        tried += 1
    log(f"no failure in {tried} seed(s) starting at {start_seed}")
    return None
