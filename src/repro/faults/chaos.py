"""Chaos harness: seeded fault storms against a live two-node cluster.

``run_chaos(seed, steps)`` builds a cluster, applies ``FaultPlan.sample(seed)``
(network loss/reordering/duplication, RX-ring pressure, transient pin
failures), runs a randomized message workload (eager and rendezvous sizes,
both directions, occasional concurrency) while a VM-pressure process swaps
out, COW-duplicates, migrates, and remaps the communication buffers —
driving mid-transfer MMU-notifier invalidations — and then verifies the
protocol invariants (liveness, payload integrity, pin accounting).

Everything is a pure function of the seed: the run also produces a SHA-256
digest of the full event trace, so two runs of the same seed must match
bit-for-bit — the determinism guarantee the simulation engine makes.

CLI::

    python -m repro.faults.chaos --seed 7 --steps 40
    python -m repro.faults.chaos --seeds 0 50 --steps 20 --json
    python -m repro.faults.chaos --seeds 0 50 --jobs 4   # fan seeds out

``--jobs N`` runs seeds in worker processes via
:func:`repro.experiments.parallel.parallel_map`; results print in seed
order either way, so serial and parallel output are byte-identical (each
seed is an independent simulation — the determinism tests pin this).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
import sys
from dataclasses import dataclass, field

from repro.cluster.builder import build_cluster
from repro.faults.invariants import InvariantChecker
from repro.faults.plan import FaultPlan
from repro.obs.metrics import MetricRegistry
from repro.openmx.config import OpenMXConfig, PinningMode
from repro.util.units import KIB, MILLISECOND

__all__ = ["ChaosResult", "run_chaos"]

# Message-size ladder: two eager classes, three rendezvous classes.
SIZES = (2_000, 16_000, 48 * KIB, 160_000, 512 * KIB)
POOL_BUFFERS = 3  # communication buffers per node, reused round-robin
STEP_BUDGET_NS = 100 * MILLISECOND  # worst-case per step with give-ups


@dataclass
class ChaosResult:
    seed: int
    steps: int
    mode: str
    finished: bool
    elapsed_ns: int
    transfers_ok: int
    transfers_degraded: int  # terminal but not "ok" (timeout/error)
    injections: dict = field(default_factory=dict)
    violations: list = field(default_factory=list)
    digest: str = ""

    @property
    def clean(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "steps": self.steps,
            "mode": self.mode,
            "finished": self.finished,
            "elapsed_ns": self.elapsed_ns,
            "transfers_ok": self.transfers_ok,
            "transfers_degraded": self.transfers_degraded,
            "injections": dict(self.injections),
            "violations": [str(v) for v in self.violations],
            "digest": self.digest,
        }


def _pattern(nbytes: int, salt: int) -> bytes:
    """Cheap per-transfer byte pattern, distinct across salts."""
    block = bytes((i + salt) % 256 for i in range(256))
    return (block * (nbytes // 256 + 1))[:nbytes]


@dataclass
class _Buffer:
    node: int
    va: int
    size: int
    busy: bool = False


def run_chaos(seed: int, steps: int, mode: PinningMode | None = None,
              plan: FaultPlan | None = None) -> ChaosResult:
    """One seeded chaos run; returns the result without raising."""
    rng = random.Random(seed * 2654435761 + 1)
    if mode is None:
        mode = list(PinningMode)[seed % len(PinningMode)]
    config = OpenMXConfig(
        pinning_mode=mode,
        resend_timeout_ns=2 * MILLISECOND,
        max_resend_rounds=4,
    )
    registry = MetricRegistry()
    cluster = build_cluster(config=config, trace=True, trace_capacity=None,
                            metrics=registry)
    if plan is None:
        plan = FaultPlan.sample(seed)
    applied = plan.apply(cluster)
    checker = InvariantChecker(cluster)
    env = cluster.env

    pools: list[list[_Buffer]] = []
    for n, node in enumerate(cluster.nodes):
        proc = node.procs[0]
        pools.append([
            _Buffer(n, proc.malloc(max(SIZES)), max(SIZES))
            for _ in range(POOL_BUFFERS)
        ])

    completed: list[tuple[str, object]] = []  # (label, request)
    state = {"done": False, "step": 0}

    def one_transfer(step: int, idx: int, src: int, dst: int,
                     nbytes: int, tag: int):
        sbuf = pools[src][(step + idx) % POOL_BUFFERS]
        rbuf = pools[dst][(step + idx) % POOL_BUFFERS]
        sbuf.busy = rbuf.busy = True
        sl, rl = cluster.lib(src), cluster.lib(dst)
        sp = cluster.nodes[src].procs[0]
        rp = cluster.nodes[dst].procs[0]
        data = _pattern(nbytes, step * 31 + seed)
        sp.write(sbuf.va, data)
        label = f"step{step}.{idx} {src}->{dst} {nbytes}B tag{tag}"
        pair: dict[str, object] = {}

        def sender():
            req = yield from sl.isend(sbuf.va, nbytes, rl.board,
                                      rl.endpoint_id, tag)
            pair["send"] = req
            yield from sl.wait(req)
            completed.append((f"send {label}", req))

        def receiver():
            req = yield from rl.irecv(rbuf.va, nbytes, tag)
            pair["recv"] = req
            yield from rl.wait(req)
            completed.append((f"recv {label}", req))
            if req.status == "ok":
                checker.check_payload(rp, rbuf.va, data, f"recv {label}")

        def transfer():
            both = env.all_of([env.process(sender(), name=f"chaos.s{tag}"),
                               env.process(receiver(), name=f"chaos.r{tag}")])
            budget = env.timeout(STEP_BUDGET_NS)
            yield env.any_of([both, budget])
            if not both.triggered:
                # Pair-level recovery: MX keeps no connection state, so a
                # sender that gave up never tells the receiver.  Drain the
                # sender's event queue (an eager failure arrives after the
                # request already completed locally), then — if and only if
                # the send failed terminally — cancel the orphaned unmatched
                # recv.  Anything else still stuck here is a real liveness
                # bug and rides to the global deadline.
                yield from sl.progress()
                sreq, rreq = pair.get("send"), pair.get("recv")
                if (sreq is not None and sreq.done and sreq.status != "ok"
                        and rreq is not None):
                    rl.cancel(rreq)
                yield both
            budget.cancel()  # recycle the 100 ms budget timer if unspent
            sbuf.busy = rbuf.busy = False

        return env.process(transfer(), name=f"chaos.t{tag}")

    def workload():
        for step in range(steps):
            state["step"] = step
            src = rng.randrange(2)
            batch = [(src, 1 - src)]
            if rng.random() < 0.3:
                batch.append((1 - src, src))  # concurrent opposite direction
            procs = []
            for idx, (a, b) in enumerate(batch):
                nbytes = rng.choice(SIZES)
                tag = step * 4 + idx + 1
                procs.append(one_transfer(step, idx, a, b, nbytes, tag))
            yield env.all_of(procs)
        state["done"] = True

    def vm_pressure():
        if plan.vm_pressure_period_ns <= 0:
            return
        vp_rng = random.Random(seed * 7919 + 13)
        while not state["done"]:
            yield env.timeout(plan.vm_pressure_period_ns)
            if state["done"]:
                return
            node = vp_rng.randrange(2)
            buf = pools[node][vp_rng.randrange(POOL_BUFFERS)]
            proc = cluster.nodes[node].procs[0]
            if buf.busy:
                # Mid-transfer: swap-out is always legal — it fires the MMU
                # notifiers (cancelling/deferring pins) but skips pinned
                # frames, so in-flight data survives.
                proc.aspace.swap_out(buf.va, buf.size)
            else:
                op = vp_rng.randrange(4)
                if op == 0:
                    proc.aspace.swap_out(buf.va, buf.size)
                elif op == 1:
                    proc.aspace.cow_duplicate(buf.va, buf.size)
                elif op == 2:
                    proc.aspace.migrate(buf.va, buf.size)
                else:
                    # free + same-size malloc: the classic address-reuse
                    # pattern that stale pinning caches corrupt on.
                    proc.free(buf.va)
                    buf.va = proc.malloc(buf.size)

    done_ev = env.process(workload(), name="chaos.workload")
    env.process(vm_pressure(), name="chaos.vm")
    deadline = steps * 2 * STEP_BUDGET_NS + 500 * MILLISECOND
    env.run(until=env.any_of([done_ev, env.timeout(deadline)]))
    checker.check_workload_finished(
        state["done"],
        f"workload stuck at step {state['step']}/{steps} after "
        f"{env.now} ns (deadline {deadline} ns)",
    )

    if state["done"]:
        # Drain remaining timers (bounded by design), then tear down and
        # audit the pin accounting.
        env.run()
        for req_label, req in completed:
            checker.check_request_terminal(req, req_label)
        for n, lib in enumerate(cluster.all_libs()):
            checker.check_endpoint_quiescent(lib, f"node{n}")
        # Quiescent cross-checks before teardown: every pin reference must
        # be reachable from a live region, every notifier chain must mirror
        # the open endpoints.
        checker.check_frame_leaks()
        checker.check_notifier_registrations()

        def teardown():
            for lib in cluster.all_libs():
                yield from lib.close()

        env.run(until=env.process(teardown(), name="chaos.teardown"))
        env.run()
        checker.check_pin_accounting()
        checker.check_frame_leaks()
        checker.check_notifier_registrations()

    ok = sum(1 for _, r in completed if r.status == "ok")
    degraded = sum(1 for _, r in completed
                   if r.done and r.status != "ok")

    digest = hashlib.sha256()
    digest.update(f"now={env.now} seed={seed} mode={mode.value}\n".encode())
    for label, req in sorted(completed, key=lambda c: c[0]):
        digest.update(f"{label} status={req.status}\n".encode())
    for node in cluster.nodes:
        counts = sorted(node.driver.counters.as_dict().items())
        digest.update(f"{node.host.name} {counts}\n".encode())
    for rec in cluster.tracer.records:
        digest.update(
            f"{rec.time}|{rec.source}|{rec.event}|"
            f"{sorted(rec.detail.items())}\n".encode()
        )

    return ChaosResult(
        seed=seed, steps=steps, mode=mode.value, finished=state["done"],
        elapsed_ns=env.now, transfers_ok=ok, transfers_degraded=degraded,
        injections=applied.injection_counts(),
        violations=list(checker.violations),
        digest=digest.hexdigest(),
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.chaos",
        description="Seeded chaos runs with protocol invariant checking.",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="single seed to run (default 0)")
    parser.add_argument("--seeds", type=int, nargs=2, metavar=("LO", "HI"),
                        help="run every seed in [LO, HI)")
    parser.add_argument("--steps", type=int, default=20,
                        help="workload steps per seed (default 20)")
    parser.add_argument("--mode", choices=[m.value for m in PinningMode],
                        help="pin mode (default: rotates by seed)")
    parser.add_argument("--json", action="store_true",
                        help="emit one JSON object per seed")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the seed fan-out "
                             "(default 1: in-process)")
    parser.add_argument("--until-failure", action="store_true",
                        help="run seeds upward from --seed until one "
                             "violates, then shrink it and print a repro "
                             "command")
    parser.add_argument("--max-seeds", type=int, default=None,
                        help="with --until-failure: give up after N seeds")
    parser.add_argument("--shards", default=None, metavar="N",
                        help="sharded chaos gate: run the full-stack "
                             "openmx_shard clean+chaos scenario serially and "
                             "at N PDES shards ('auto' caps at the host's "
                             "cores) with --seed as the fault seed; exit 1 "
                             "unless the end states are byte-identical")
    args = parser.parse_args(argv)

    seeds = range(*args.seeds) if args.seeds else [args.seed]
    mode = PinningMode(args.mode) if args.mode else None

    if args.shards is not None:
        # The classic 2-node chaos workload drives its faults from one
        # global RNG, which cannot shard byte-identically by construction;
        # the sharded gate instead uses the pure-fault-plan full-stack
        # scenario, where chaos verdicts are shard-independent.
        from repro.sim.openmx_shard import openmx_sim_state
        from repro.sim.pdes import resolve_shards

        shards = resolve_shards(args.shards)
        states = {}
        for n in sorted({1, shards}):
            state = openmx_sim_state(quick=True, chaos_seed=args.seed,
                                     shards=n)
            del state["shards"]  # the only field allowed to differ
            states[n] = state
        base = states[1]
        for n, state in states.items():
            verdict = "identical" if state == base else "DIVERGED"
            print(f"openmx_shard chaos seed={args.seed} shards={n}: "
                  f"clean digest {state['clean']['digest'][:16]}..., "
                  f"chaos digest {state['chaos']['digest'][:16]}... "
                  f"[{verdict} vs serial]")
        if any(state != base for state in states.values()):
            print("sharded chaos end state diverged from serial",
                  file=sys.stderr)
            return 1
        return 0

    if args.until_failure:
        from repro.faults.shrink import hunt_until_failure

        mode_flag = f" --mode {args.mode}" if args.mode else ""
        found = hunt_until_failure(
            lambda seed, steps: run_chaos(seed, steps, mode=mode),
            args.seed, args.steps, max_seeds=args.max_seeds,
            repro_command=lambda s, st: (
                f"python -m repro.faults.chaos --seed {s} --steps {st}"
                + mode_flag),
        )
        return 1 if found is not None else 0

    from repro.experiments.parallel import parallel_map

    results = parallel_map(
        [(run_chaos, {"seed": seed, "steps": args.steps, "mode": mode})
         for seed in seeds],
        jobs=args.jobs,
    )
    failures = 0
    for result in results:
        if args.json:
            print(json.dumps(result.as_dict()))
        else:
            verdict = "CLEAN" if result.clean else "VIOLATIONS"
            print(f"seed={result.seed:4d} mode={result.mode:13s} "
                  f"ok={result.transfers_ok:3d} "
                  f"degraded={result.transfers_degraded:2d} "
                  f"injected={sum(result.injections.values()):5d} "
                  f"{verdict}")
            for v in result.violations:
                print(f"    {v}")
        if not result.clean:
            failures += 1
    if failures:
        print(f"{failures}/{len(list(seeds))} seed(s) violated invariants",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
