"""Physical memory: frames with real byte contents and pin accounting.

Frames carry actual bytes (a lazily-allocated ``bytearray`` per 4 KiB frame)
so that the protocol stack can be tested for *data* correctness: a transfer
that reads stale frames after a copy-on-write, or writes through a dangling
pin after migration, produces wrong bytes and fails the integration tests
rather than just looking odd in a trace.

Timing is **not** modelled here — copy costs are charged on CPU cores or DMA
engines by their owners.  This module is pure state.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["Frame", "OutOfMemory", "PAGE_SIZE", "PhysicalMemory"]

PAGE_SIZE = 4096


class OutOfMemory(Exception):
    """No free physical frames remain."""


class Frame:
    """One physical page frame."""

    __slots__ = ("pfn", "pin_count", "map_count", "_data", "in_use")

    def __init__(self, pfn: int):
        self.pfn = pfn
        self.pin_count = 0
        self.map_count = 0
        self.in_use = False
        self._data: bytearray | None = None

    @property
    def pinned(self) -> bool:
        return self.pin_count > 0

    @property
    def shared(self) -> bool:
        """Mapped by more than one address space (COW after fork)."""
        return self.map_count > 1

    @property
    def data(self) -> bytearray:
        """Frame contents, allocated on first touch (zero-filled)."""
        if self._data is None:
            self._data = bytearray(PAGE_SIZE)
        return self._data

    def write(self, offset: int, payload: bytes | bytearray | memoryview) -> None:
        end = offset + len(payload)
        if offset < 0 or end > PAGE_SIZE:
            raise ValueError(f"write [{offset}, {end}) outside frame")
        self.data[offset:end] = payload

    def read(self, offset: int, length: int) -> bytes:
        end = offset + length
        if offset < 0 or end > PAGE_SIZE:
            raise ValueError(f"read [{offset}, {end}) outside frame")
        if self._data is None:
            return bytes(length)
        return bytes(self._data[offset:end])

    def copy_contents_from(self, other: "Frame") -> None:
        """Duplicate another frame's bytes (copy-on-write, migration)."""
        if other._data is None:
            self._data = None
        else:
            self.data[:] = other._data

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Frame pfn={self.pfn} pins={self.pin_count}>"


class PhysicalMemory:
    """A host's pool of page frames with pinned-page accounting.

    ``max_pinned_fraction`` models the kernel refusing to let one subsystem
    wire down all of RAM; the Open-MX driver reacts to pin failures by
    unpinning least-recently-used regions (Section 3.1 of the paper).
    """

    def __init__(self, total_bytes: int, max_pinned_fraction: float = 0.9):
        if total_bytes < PAGE_SIZE:
            raise ValueError("memory must hold at least one frame")
        if not 0.0 < max_pinned_fraction <= 1.0:
            raise ValueError(f"bad max_pinned_fraction {max_pinned_fraction}")
        self.nframes = total_bytes // PAGE_SIZE
        self.max_pinned = int(self.nframes * max_pinned_fraction)
        self._frames: dict[int, Frame] = {}
        self._free_pfns: list[int] = list(range(self.nframes - 1, -1, -1))
        self.pinned_frames = 0
        self.alloc_count = 0
        self.free_count = 0

    @property
    def free_frames(self) -> int:
        return len(self._free_pfns)

    @property
    def used_frames(self) -> int:
        return self.nframes - len(self._free_pfns)

    def allocate(self) -> Frame:
        """Take a free frame (lowest-numbered free pfn for determinism)."""
        if not self._free_pfns:
            raise OutOfMemory(f"all {self.nframes} frames in use")
        pfn = self._free_pfns.pop()
        frame = self._frames.get(pfn)
        if frame is None:
            frame = Frame(pfn)
            self._frames[pfn] = frame
        frame.in_use = True
        frame.map_count = 1
        frame._data = None  # fresh pages are zero-filled
        self.alloc_count += 1
        return frame

    def share(self, frame: Frame) -> None:
        """Take another mapping reference on a frame (fork COW sharing).

        Only unpinned frames may be shared: pinned pages are eagerly copied
        at fork (copy-on-pin), mirroring how DMA-pinned pages behave under
        Linux ``copy_page_range``.
        """
        if not frame.in_use:
            raise ValueError(f"sharing free frame {frame.pfn}")
        if frame.pinned:
            raise ValueError(f"sharing pinned frame {frame.pfn}")
        frame.map_count += 1

    def free(self, frame: Frame) -> None:
        if not frame.in_use:
            raise ValueError(f"double free of frame {frame.pfn}")
        if frame.map_count > 1:
            # Another address space still maps this frame (COW sharing):
            # just drop our mapping reference.
            frame.map_count -= 1
            return
        if frame.pinned:
            raise ValueError(
                f"freeing pinned frame {frame.pfn} (pin_count={frame.pin_count})"
            )
        frame.in_use = False
        frame.map_count = 0
        self._free_pfns.append(frame.pfn)
        self.free_count += 1

    # -- pin accounting ----------------------------------------------------
    def can_pin(self, nframes: int) -> bool:
        return self.pinned_frames + nframes <= self.max_pinned

    def account_pin(self, frame: Frame) -> None:
        """Increment a frame's pin count (the caller pays the time cost)."""
        if not frame.in_use:
            raise ValueError(f"pinning free frame {frame.pfn}")
        if frame.pin_count == 0:
            if self.pinned_frames >= self.max_pinned:
                raise OutOfMemory(
                    f"pinned-page limit reached ({self.max_pinned} frames)"
                )
            self.pinned_frames += 1
        frame.pin_count += 1

    def account_unpin(self, frame: Frame) -> None:
        if frame.pin_count <= 0:
            raise ValueError(f"unpinning unpinned frame {frame.pfn}")
        frame.pin_count -= 1
        if frame.pin_count == 0:
            self.pinned_frames -= 1

    def iter_used(self) -> Iterator[Frame]:
        return (f for f in self._frames.values() if f.in_use)
