"""CPU cores as contended simulation resources.

A :class:`CpuCore` is a unit-capacity priority resource.  All host-side work
— syscalls, memory copies, page pinning, interrupt bottom halves, completion
polling — executes by holding a core for a span of simulated time.

Priorities (lower = served first) follow Linux's effective ordering:

* ``PRIO_BH``     — softirq / bottom-half receive processing ("strongly
  privileged" in the paper's words; it can starve user work, which is the
  mechanism behind the Section 4.3 overlap-miss collapse),
* ``PRIO_KERNEL`` — syscall-context kernel work (pinning, tx path),
* ``PRIO_USER``   — application computation and completion polling.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.hw.specs import CpuSpec
from repro.sim import Environment, Resource

__all__ = ["CpuCore", "PRIO_BH", "PRIO_KERNEL", "PRIO_USER"]

PRIO_BH = 0
PRIO_KERNEL = 5
PRIO_USER = 10


class CpuCore:
    """One core: a unit-capacity priority resource plus helpers."""

    def __init__(self, env: Environment, spec: CpuSpec, host_name: str, index: int):
        self.env = env
        self.spec = spec
        self.index = index
        self.name = f"{host_name}/cpu{index}"
        self._res = Resource(env, capacity=1, name=self.name)

    @property
    def queue_length(self) -> int:
        return self._res.queue_length

    @property
    def busy(self) -> bool:
        return self._res.count > 0

    def utilization(self, elapsed: int | None = None) -> float:
        return self._res.utilization(elapsed)

    def execute(self, cost_ns: int, priority: int = PRIO_USER) -> Generator:
        """Hold the core for ``cost_ns`` (single uninterruptible span).

        Use :meth:`execute_sliced` for long work that must yield to
        higher-priority claimants at a finer grain.
        """
        with self._res.request(priority) as req:
            yield req
            if cost_ns > 0:
                yield self.env.timeout(cost_ns)

    def execute_sliced(self, cost_ns: int, priority: int = PRIO_USER,
                       slice_ns: int = 2_000) -> Generator:
        """Hold the core in ``slice_ns`` chunks, requeueing between chunks.

        Long-running work (large memcpys, page-pinning loops) uses this so a
        bottom half arriving mid-way is served at the next slice boundary —
        the simulation analogue of involuntary preemption.
        """
        remaining = cost_ns
        while remaining > 0:
            chunk = min(remaining, slice_ns)
            with self._res.request(priority) as req:
                yield req
                yield self.env.timeout(chunk)
            remaining -= chunk

    def memcpy(self, nbytes: int, priority: int = PRIO_KERNEL) -> Generator:
        """Copy ``nbytes`` on this core at the CPU's memcpy bandwidth."""
        from repro.util.units import transfer_time_ns

        cost = transfer_time_ns(nbytes, self.spec.memcpy_bytes_per_sec)
        yield from self.execute(cost, priority)

    def request(self, priority: int = PRIO_USER):
        """Raw claim on the core (caller must release / use as ctx manager)."""
        return self._res.request(priority)
