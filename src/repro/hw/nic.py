"""Ethernet NIC model.

The NIC serializes frames onto the wire at link rate (one frame at a time,
full duplex: TX and RX are independent), and deposits received frames into a
bounded RX ring.  Receiving raises an interrupt via a callback installed by
the kernel; frames arriving while the ring is full are dropped (tail drop),
which exercises the retransmission machinery of the protocol above.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.hw.specs import NicSpec
from repro.obs.metrics import MetricRegistry, resolve_registry
from repro.sim import Environment, Resource, Store
from repro.util.units import transfer_time_ns

__all__ = ["EthernetFrame", "Nic"]


@dataclass(frozen=True)
class EthernetFrame:
    """A frame on the wire; ``payload`` is an opaque upper-layer packet."""

    src: str
    dst: str
    ethertype: int
    payload: Any
    payload_bytes: int
    seq: int = field(default=0)

    def wire_bytes(self, overhead: int) -> int:
        return self.payload_bytes + overhead


class Nic:
    """One Ethernet port: TX serialization, RX ring, interrupt callback."""

    def __init__(self, env: Environment, spec: NicSpec, name: str,
                 metrics: MetricRegistry | None = None):
        self.env = env
        self.spec = spec
        self.name = name
        self.address = name  # flat addressing: the NIC name is its MAC
        self._tx = Resource(env, capacity=1, name=f"{name}/tx")
        self.rx_ring: Store = Store(env, name=f"{name}/rxring")
        self._rx_ring_used = 0
        # Fault injection: phantom-occupied RX descriptors.  A positive value
        # shrinks the effective ring, forcing tail drops under load without
        # touching the spec (see repro.faults.models.RingPressure).
        self.ring_pressure = 0
        self._link: "LinkPort | None" = None
        self._on_rx: Callable[[], None] | None = None
        self._txseq = 0
        # Statistics.
        self.tx_frames = 0
        self.tx_bytes = 0
        self.rx_frames = 0
        self.rx_bytes = 0
        self.rx_ring_drops = 0
        # Registry mirrors (see docs/observability.md for the catalogue).
        registry = resolve_registry(metrics)
        self.metrics = registry
        lbl = {"nic": name}
        self._m_tx_frames = registry.counter(
            "nic_tx_frames", "frames serialized onto the wire",
            labelnames=("nic",)).labels(**lbl)
        self._m_tx_bytes = registry.counter(
            "nic_tx_bytes", "payload bytes transmitted",
            labelnames=("nic",)).labels(**lbl)
        self._m_rx_frames = registry.counter(
            "nic_rx_frames", "frames accepted into the RX ring",
            labelnames=("nic",)).labels(**lbl)
        self._m_rx_bytes = registry.counter(
            "nic_rx_bytes", "payload bytes received",
            labelnames=("nic",)).labels(**lbl)
        self._m_rx_drops = registry.counter(
            "nic_rx_ring_drops", "frames tail-dropped on a full RX ring",
            labelnames=("nic",)).labels(**lbl)
        self._m_ring_depth = registry.histogram(
            "nic_rx_ring_depth", "RX ring occupancy sampled at each arrival",
            labelnames=("nic",)).labels(**lbl)

    # -- wiring ------------------------------------------------------------
    def attach_link(self, link: "LinkPort") -> None:
        if self._link is not None:
            raise RuntimeError(f"{self.name} already attached to a link")
        self._link = link

    def set_rx_callback(self, callback: Callable[[], None]) -> None:
        """Install the kernel's interrupt-raise hook (one consumer only)."""
        self._on_rx = callback

    # -- transmit ----------------------------------------------------------
    def transmit(self, frame: EthernetFrame):
        """Process: serialize one frame onto the wire (hold TX at line rate)."""
        if self._link is None:
            raise RuntimeError(f"{self.name} is not connected")
        if frame.payload_bytes > self.spec.mtu:
            raise ValueError(
                f"frame payload {frame.payload_bytes} exceeds MTU {self.spec.mtu}"
            )
        with self._tx.request() as req:
            yield req
            wire = frame.wire_bytes(self.spec.frame_overhead_bytes)
            yield self.env.timeout(
                transfer_time_ns(wire, self.spec.link_bytes_per_sec)
            )
        self.tx_frames += 1
        self.tx_bytes += frame.payload_bytes
        self._m_tx_frames.inc()
        self._m_tx_bytes.inc(frame.payload_bytes)
        self._link.carry(frame)

    def send(self, frame: EthernetFrame):
        """Fire-and-forget transmit (spawns the TX process)."""
        self._txseq += 1
        return self.env.process(self.transmit(frame), name=f"{self.name}.tx")

    # -- receive -----------------------------------------------------------
    def deliver(self, frame: EthernetFrame) -> None:
        """Called by the link when a frame reaches this port."""
        if self._rx_ring_used + self.ring_pressure >= self.spec.rx_ring_entries:
            self.rx_ring_drops += 1
            self._m_rx_drops.inc()
            return
        self._rx_ring_used += 1
        self.rx_frames += 1
        self.rx_bytes += frame.payload_bytes
        self._m_rx_frames.inc()
        self._m_rx_bytes.inc(frame.payload_bytes)
        self._m_ring_depth.observe(self._rx_ring_used)
        self.rx_ring.put(frame)
        if self._on_rx is not None:
            self._on_rx()

    def ring_pop(self) -> EthernetFrame | None:
        """Drain one frame from the RX ring (used by the bottom half)."""
        ok, frame = self.rx_ring.try_get()
        if ok:
            self._rx_ring_used -= 1
            return frame
        return None

    def ring_pop_peek_empty(self) -> bool:
        """True if the RX ring is currently empty (NAPI budget check)."""
        return self._rx_ring_used == 0


class LinkPort:
    """The link-side interface a NIC talks to (implemented in repro.cluster)."""

    def carry(self, frame: EthernetFrame) -> None:  # pragma: no cover - interface
        raise NotImplementedError
