"""Ethernet NIC model.

The NIC serializes frames onto the wire at link rate (one frame at a time,
full duplex: TX and RX are independent), and deposits received frames into a
bounded RX ring.  Receiving raises an interrupt via a callback installed by
the kernel; frames arriving while the ring is full are dropped (tail drop),
which exercises the retransmission machinery of the protocol above.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.hw.specs import NicSpec
from repro.obs.metrics import MetricRegistry, resolve_registry
from repro.sim import Environment, Store
from repro.util.units import transfer_time_ns

__all__ = ["EthernetFrame", "Nic"]


@dataclass(frozen=True)
class EthernetFrame:
    """A frame on the wire; ``payload`` is an opaque upper-layer packet."""

    src: str
    dst: str
    ethertype: int
    payload: Any
    payload_bytes: int
    seq: int = field(default=0)

    def wire_bytes(self, overhead: int) -> int:
        return self.payload_bytes + overhead


class Nic:
    """One Ethernet port: TX serialization, RX ring, interrupt callback."""

    def __init__(self, env: Environment, spec: NicSpec, name: str,
                 metrics: MetricRegistry | None = None):
        self.env = env
        self.spec = spec
        self.name = name
        self.address = name  # flat addressing: the NIC name is its MAC
        # TX pump: one armed timer serializes the head of this deque onto
        # the wire; queued frames exit back-to-back at line rate without a
        # dedicated process (or Resource queue) per frame.
        self._txq: deque[EthernetFrame] = deque()
        self._tx_busy = False
        self.rx_ring: Store = Store(env, name=f"{name}/rxring")
        self._rx_ring_used = 0
        # Fault injection: phantom-occupied RX descriptors.  A positive value
        # shrinks the effective ring, forcing tail drops under load without
        # touching the spec (see repro.faults.models.RingPressure).
        self.ring_pressure = 0
        self._link: "LinkPort | None" = None
        self._on_rx: Callable[[], None] | None = None
        self._txseq = 0
        # Statistics.
        self.tx_frames = 0
        self.tx_bytes = 0
        self.rx_frames = 0
        self.rx_bytes = 0
        self.rx_ring_drops = 0
        # Registry mirrors (see docs/observability.md for the catalogue).
        # ``_live_metrics`` gates every per-frame mirror update behind one
        # branch: the no-op registry hands out shared null metrics, but even
        # no-op calls cost attribute lookups on the per-frame hot path.
        registry = resolve_registry(metrics)
        self.metrics = registry
        self._live_metrics = registry.enabled
        lbl = {"nic": name}
        self._m_tx_frames = registry.counter(
            "nic_tx_frames", "frames serialized onto the wire",
            labelnames=("nic",)).labels(**lbl)
        self._m_tx_bytes = registry.counter(
            "nic_tx_bytes", "payload bytes transmitted",
            labelnames=("nic",)).labels(**lbl)
        self._m_rx_frames = registry.counter(
            "nic_rx_frames", "frames accepted into the RX ring",
            labelnames=("nic",)).labels(**lbl)
        self._m_rx_bytes = registry.counter(
            "nic_rx_bytes", "payload bytes received",
            labelnames=("nic",)).labels(**lbl)
        self._m_rx_drops = registry.counter(
            "nic_rx_ring_drops", "frames tail-dropped on a full RX ring",
            labelnames=("nic",)).labels(**lbl)
        self._m_ring_depth = registry.histogram(
            "nic_rx_ring_depth", "RX ring occupancy sampled at each arrival",
            labelnames=("nic",)).labels(**lbl)

    # -- wiring ------------------------------------------------------------
    def attach_link(self, link: "LinkPort") -> None:
        if self._link is not None:
            raise RuntimeError(f"{self.name} already attached to a link")
        self._link = link

    def set_rx_callback(self, callback: Callable[[], None]) -> None:
        """Install the kernel's interrupt-raise hook (one consumer only)."""
        self._on_rx = callback

    # -- transmit ----------------------------------------------------------
    def send(self, frame: EthernetFrame) -> None:
        """Fire-and-forget transmit: enqueue the frame on the TX pump.

        A persistent pump replaces the old process-per-frame design: the
        head-of-queue frame owns one armed timer, and back-to-back frames
        exit the (uncontended, FIFO) port at ``t0 + sum(frame_time)`` —
        exactly the instants the per-frame Resource queue produced, at one
        heap event per frame instead of four.

        Errors surface asynchronously from ``env.run()`` via a failed
        event, just as a crashing TX process did, so fire-and-forget
        callers still fail loudly instead of silently losing frames.
        """
        self._txseq += 1
        # The frame is frozen (wire immutability), but the NIC owns it from
        # here on: stamp the TX sequence the way dataclasses' own __init__
        # writes frozen fields.
        object.__setattr__(frame, "seq", self._txseq)
        if self._link is None:
            self.env.event().fail(RuntimeError(f"{self.name} is not connected"))
            return
        if frame.payload_bytes > self.spec.mtu:
            self.env.event().fail(ValueError(
                f"frame payload {frame.payload_bytes} exceeds MTU {self.spec.mtu}"
            ))
            return
        self._txq.append(frame)
        if not self._tx_busy:
            self._tx_busy = True
            self._arm_tx(frame)

    def _arm_tx(self, frame: EthernetFrame) -> None:
        """Start serializing the head-of-queue frame (one timer, no process)."""
        wire = frame.wire_bytes(self.spec.frame_overhead_bytes)
        timer = self.env.timeout(
            transfer_time_ns(wire, self.spec.link_bytes_per_sec)
        )
        timer.callbacks.append(self._tx_done)

    def _tx_done(self, _event) -> None:
        """Wire exit: hand the frame to the link, start the next one."""
        frame = self._txq.popleft()
        self.tx_frames += 1
        self.tx_bytes += frame.payload_bytes
        if self._live_metrics:
            self._m_tx_frames.inc()
            self._m_tx_bytes.inc(frame.payload_bytes)
        self._link.carry(frame)
        if self._txq:
            self._arm_tx(self._txq[0])
        else:
            self._tx_busy = False

    # -- receive -----------------------------------------------------------
    def deliver(self, frame: EthernetFrame) -> None:
        """Called by the link when a frame reaches this port."""
        if self._rx_ring_used + self.ring_pressure >= self.spec.rx_ring_entries:
            self.rx_ring_drops += 1
            if self._live_metrics:
                self._m_rx_drops.inc()
            return
        self._rx_ring_used += 1
        self.rx_frames += 1
        self.rx_bytes += frame.payload_bytes
        if self._live_metrics:
            self._m_rx_frames.inc()
            self._m_rx_bytes.inc(frame.payload_bytes)
            self._m_ring_depth.observe(self._rx_ring_used)
        self.rx_ring.put(frame)
        if self._on_rx is not None:
            self._on_rx()

    def ring_pop(self) -> EthernetFrame | None:
        """Drain one frame from the RX ring (used by the bottom half)."""
        ok, frame = self.rx_ring.try_get()
        if ok:
            self._rx_ring_used -= 1
            return frame
        return None

    def ring_pop_peek_empty(self) -> bool:
        """True if the RX ring is currently empty (NAPI budget check)."""
        return self._rx_ring_used == 0


class LinkPort:
    """The link-side interface a NIC talks to (implemented in repro.cluster)."""

    def carry(self, frame: EthernetFrame) -> None:  # pragma: no cover - interface
        raise NotImplementedError
