"""Hardware catalogue.

The CPU entries reproduce Table 1 of the paper exactly: the base and
per-page cost of an Open-MX pin+unpin cycle were measured by the author on
four machines and those constants *are* the paper's pinning cost model, so we
adopt them verbatim.  The remaining per-CPU parameters (memcpy bandwidth,
syscall and interrupt costs) are calibration knobs chosen to land the
throughput curves in the ranges Figures 6 and 7 report; they scale with the
clock frequency the same way the pin costs do.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.util.units import GB, gbit_rate_bytes_per_sec

__all__ = [
    "CpuSpec",
    "IoatSpec",
    "NicSpec",
    "CPU_CATALOGUE",
    "MYRI_10G",
    "OPTERON_265",
    "OPTERON_8347",
    "XEON_E5435",
    "XEON_E5460",
    "DEFAULT_IOAT",
]


@dataclass(frozen=True)
class CpuSpec:
    """Per-CPU timing parameters.

    ``pin_base_ns``/``pin_per_page_ns`` cover a full pin **plus** unpin cycle,
    matching what Table 1 measures. The split between the pin and unpin halves
    is controlled by the pinning layer (``repro.kernel.pinning``).
    """

    name: str
    ghz: float
    ncores: int
    # Table 1 constants (combined pin+unpin).
    pin_base_ns: int
    pin_per_page_ns: int
    # Copy and kernel-path costs (calibration knobs, scaled by frequency).
    memcpy_bytes_per_sec: float
    syscall_ns: int
    irq_entry_ns: int
    bh_per_packet_ns: int
    tx_per_packet_ns: int
    poll_iteration_ns: int

    def pin_unpin_cost_ns(self, npages: int) -> int:
        """Table 1 cost model for a combined pin+unpin of ``npages`` pages."""
        if npages < 0:
            raise ValueError(f"negative page count {npages}")
        return self.pin_base_ns + self.pin_per_page_ns * npages

    def pin_throughput_gb_s(self, region_bytes: int = 16 * 1024 * 1024,
                            page_size: int = 4096) -> float:
        """The derived GB/s column of Table 1 (large-region amortized rate)."""
        npages = (region_bytes + page_size - 1) // page_size
        return region_bytes / self.pin_unpin_cost_ns(npages)  # bytes/ns == GB/s


def _scaled(ghz: float, ns_at_3ghz: float) -> int:
    """Scale a cost measured on a ~3 GHz part to another clock frequency."""
    return int(round(ns_at_3ghz * 3.16 / ghz))


def _cpu(name: str, ghz: float, ncores: int, base_us: float, per_page_ns: int,
         memcpy_gb_s: float) -> CpuSpec:
    return CpuSpec(
        name=name,
        ghz=ghz,
        ncores=ncores,
        pin_base_ns=int(base_us * 1000),
        pin_per_page_ns=per_page_ns,
        memcpy_bytes_per_sec=memcpy_gb_s * GB,
        syscall_ns=_scaled(ghz, 150),
        irq_entry_ns=_scaled(ghz, 600),
        bh_per_packet_ns=_scaled(ghz, 500),
        tx_per_packet_ns=_scaled(ghz, 400),
        poll_iteration_ns=_scaled(ghz, 80),
    )


# Table 1, row by row.  The memcpy column is the sustained single-core
# kernel-copy bandwidth (cache-cold source and destination) — FSB-era parts
# managed only ~0.8-1.3 GB/s, which is why offloading the receive copy to
# I/OAT pays off at 10G rates (Figure 6).
OPTERON_265 = _cpu("Opteron 265", 1.8, 2, 4.2, 720, 0.80)
OPTERON_8347 = _cpu("Opteron 8347", 1.9, 4, 2.2, 330, 1.00)
XEON_E5435 = _cpu("Xeon E5435", 2.33, 4, 2.3, 250, 1.10)
XEON_E5460 = _cpu("Xeon E5460", 3.16, 4, 1.3, 150, 1.25)

CPU_CATALOGUE: dict[str, CpuSpec] = {
    spec.name: spec
    for spec in (OPTERON_265, OPTERON_8347, XEON_E5435, XEON_E5460)
}

@dataclass(frozen=True)
class NicSpec:
    """Ethernet NIC parameters (defaults model a Myri-10G in Ethernet mode)."""

    name: str = "Myri-10G"
    link_bytes_per_sec: float = field(default=gbit_rate_bytes_per_sec(10.0))
    mtu: int = 9000
    frame_overhead_bytes: int = 42  # eth header + FCS + preamble + IFG
    wire_latency_ns: int = 1_000  # cut-through switch + propagation
    rx_ring_entries: int = 1024
    interrupt_coalescing_us: int = 0  # 0 = interrupt per frame batch


MYRI_10G = NicSpec()


@dataclass(frozen=True)
class IoatSpec:
    """Intel I/OAT DMA copy engine parameters."""

    name: str = "I/OAT"
    channels: int = 1
    copy_bytes_per_sec: float = 4.0 * GB
    submit_ns: int = 250       # CPU cost to build+submit one descriptor
    completion_check_ns: int = 100


DEFAULT_IOAT = IoatSpec()


def slower_nic(spec: NicSpec, gbits: float) -> NicSpec:
    """Derive a NIC spec with a different link rate (for slow-host studies)."""
    return replace(spec, link_bytes_per_sec=gbit_rate_bytes_per_sec(gbits),
                   name=f"{spec.name}@{gbits}G")
