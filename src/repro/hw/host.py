"""A host: cores + physical memory + NIC + optional I/OAT engine.

The host is pure hardware; the OS layer (``repro.kernel.Kernel``) attaches
itself on construction and owns address spaces, interrupts and pinning.
"""

from __future__ import annotations

from repro.hw.cpu import CpuCore
from repro.hw.ioat import IoatEngine
from repro.hw.memory import PhysicalMemory
from repro.hw.nic import Nic
from repro.hw.specs import DEFAULT_IOAT, MYRI_10G, CpuSpec, IoatSpec, NicSpec
from repro.obs.metrics import MetricRegistry, resolve_registry
from repro.sim import Environment
from repro.util.units import GIB

__all__ = ["Host"]


class Host:
    """One cluster node."""

    def __init__(
        self,
        env: Environment,
        name: str,
        cpu: CpuSpec,
        nic_spec: NicSpec = MYRI_10G,
        memory_bytes: int = 8 * GIB,
        ioat_spec: IoatSpec | None = DEFAULT_IOAT,
        metrics: MetricRegistry | None = None,
    ):
        self.env = env
        self.name = name
        self.cpu_spec = cpu
        self.metrics = resolve_registry(metrics)
        self.cores = [CpuCore(env, cpu, name, i) for i in range(cpu.ncores)]
        self.memory = PhysicalMemory(memory_bytes)
        self.nic = Nic(env, nic_spec, f"{name}/nic0", metrics=self.metrics)
        self.ioat = IoatEngine(env, ioat_spec, name) if ioat_spec else None
        self.kernel = None  # set by repro.kernel.Kernel.__init__

    def core(self, index: int) -> CpuCore:
        return self.cores[index]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Host {self.name} {self.cpu_spec.name} x{len(self.cores)}>"
