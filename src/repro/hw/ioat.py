"""Intel I/OAT DMA copy engine model.

The engine performs memory-to-memory copies without consuming CPU time:
the submitting core pays only a small descriptor-submission cost (charged by
the caller), and the copy itself proceeds at the engine's bandwidth on one of
its channels.  Open-MX uses it to offload the receive-side copy of pull-reply
payloads into application pages (Section 2.2).
"""

from __future__ import annotations

from collections.abc import Generator

from repro.hw.specs import IoatSpec
from repro.sim import Environment, Resource
from repro.util.units import transfer_time_ns

__all__ = ["IoatEngine"]


class IoatEngine:
    """A host's I/OAT engine: ``channels`` independent DMA channels."""

    def __init__(self, env: Environment, spec: IoatSpec, host_name: str):
        self.env = env
        self.spec = spec
        self.name = f"{host_name}/ioat"
        self._channels = Resource(env, capacity=spec.channels, name=self.name)
        self.copies = 0
        self.bytes_copied = 0

    def copy(self, nbytes: int) -> Generator:
        """Process: one DMA copy of ``nbytes`` (waits for a free channel)."""
        if nbytes < 0:
            raise ValueError(f"negative copy size {nbytes}")
        with self._channels.request() as req:
            yield req
            yield self.env.timeout(
                transfer_time_ns(nbytes, self.spec.copy_bytes_per_sec)
            )
        self.copies += 1
        self.bytes_copied += nbytes

    def utilization(self, elapsed: int | None = None) -> float:
        return self._channels.utilization(elapsed)
