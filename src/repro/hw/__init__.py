"""Hardware models: CPUs, memory, NICs, DMA engines, hosts."""

from .cpu import PRIO_BH, PRIO_KERNEL, PRIO_USER, CpuCore
from .host import Host
from .ioat import IoatEngine
from .memory import PAGE_SIZE, Frame, OutOfMemory, PhysicalMemory
from .nic import EthernetFrame, Nic
from .specs import (
    CPU_CATALOGUE,
    DEFAULT_IOAT,
    MYRI_10G,
    OPTERON_265,
    OPTERON_8347,
    XEON_E5435,
    XEON_E5460,
    CpuSpec,
    IoatSpec,
    NicSpec,
    slower_nic,
)

__all__ = [
    "CPU_CATALOGUE",
    "CpuCore",
    "CpuSpec",
    "DEFAULT_IOAT",
    "EthernetFrame",
    "Frame",
    "Host",
    "IoatEngine",
    "IoatSpec",
    "MYRI_10G",
    "Nic",
    "NicSpec",
    "OPTERON_265",
    "OPTERON_8347",
    "OutOfMemory",
    "PAGE_SIZE",
    "PRIO_BH",
    "PRIO_KERNEL",
    "PRIO_USER",
    "PhysicalMemory",
    "XEON_E5435",
    "XEON_E5460",
    "slower_nic",
]
