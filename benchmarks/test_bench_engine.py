"""Benchmark: raw engine dispatch throughput (``repro.sim.bench``).

Unlike the experiment benchmarks this one also carries correctness
assertions: the Timeout free-list must actually engage on the retransmit
idiom, and the A/B harness must report identical event counts for the
frozen seed engine and the current one (the optimization contract — speed
may change, simulated behavior may not).
"""

from pathlib import Path

import pytest

from repro.sim.bench import SCENARIOS, run_ab, run_scenario

from benchmarks.conftest import full_sweep

SEED_ENGINE = Path(__file__).with_name("engine_seed_reference.py")


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_engine_scenario(run_once, name):
    report = run_once(run_scenario, name, quick=not full_sweep(), repeat=1)
    assert report["events"] > 0
    assert report["events_per_sec"] > 0
    print()
    print(f"{name}: {report['events']} events, "
          f"{report['events_per_sec']:,} events/sec, "
          f"{report['timeouts_recycled']} timeouts recycled "
          f"({report['timeouts_reused']} reused)")


def test_timer_churn_engages_free_list():
    # The whole point of the fast path: cancelled retransmit timers are
    # recycled, and later timeout() calls are served from the pool.
    report = run_scenario("timer_churn", quick=True, repeat=1)
    assert report["timeouts_recycled"] > 0
    assert report["timeouts_reused"] > 0


def test_per_scenario_counters_are_scenario_local():
    # Counters in a scenario's report must come from *its own* timed run.
    # condition_fanout cancels its loser timers, so it must report its own
    # recycling — and wheel_storm must show wheel mechanics (cascades from
    # mid-level timers, promotions off the overflow heap) that the pure
    # short-delay scenarios never trigger.
    fanout = run_scenario("condition_fanout", quick=True, repeat=1)
    assert fanout["timeouts_recycled"] > 0
    assert fanout["timeouts_reused"] > 0

    storm = run_scenario("wheel_storm", quick=True, repeat=1)
    assert storm["timeouts_recycled"] > 0
    assert storm["wheel_ticks"] > 0
    assert storm["wheel_cascades"] > 0
    assert storm["wheel_promotions"] > 0

    pingpong = run_scenario("event_pingpong", quick=True, repeat=1)
    assert pingpong["wheel_ticks"] == 0  # pure ready-FIFO traffic
    assert pingpong["timeouts_recycled"] == 0


def test_ab_reference_agrees_on_event_counts(run_once):
    # run_ab raises SystemExit if the seed engine and the current engine
    # disagree on any scenario's event count — the determinism guardrail.
    report = run_once(run_ab, str(SEED_ENGINE), quick=True, repeat=1)
    assert report["total"]["events"] > 0
    assert report["total"]["speedup"] > 0
    print()
    for name, row in report["scenarios"].items():
        print(f"{name}: {row['speedup']:.2f}x vs seed engine")
    print(f"total: {report['total']['speedup']:.2f}x")
