"""Frozen pre-index VM layer, for interleaved A/B benchmarking.

This module preserves the seed implementations of the VM-layer pieces the
indexed-lookup change rewrote:

* ``SeedAddressSpace`` — ``find_vma`` walks every VMA, ``resident_pages``
  walks every page of the queried range, ``munmap`` scans all VMAs for
  victims, ``read``/``write`` re-fault page by page;
* ``SeedUserRegion`` / ``seed_segments_pages`` — ``_locate`` (and with it
  ``pages_needed`` / ``covers``, the per-packet watermark test) scans the
  segment list linearly; ``segments_pages`` appends page VAs one by one;
* ``SeedLinearRegionIndex`` — the scan-all-regions endpoint notifier
  dispatch: every invalidation tests every declared region's every segment;
* ``SeedPinService`` — ``pin_user_pages`` charges the core once per page
  (one heap event + one core acquisition per pinned page) even when the
  core is uncontended and nothing can observe the intermediate instants.

``python -m repro.sim.bench --ab-vm benchmarks/vm_seed_reference.py`` builds
the ``vm_churn`` scenario on this stack and on the current one, strictly
interleaved, and refuses to report a speedup unless both simulations end in
exactly the same state (same final clock, same fault/pin/invalidation
counters, same data digest) — the optimization contract: better asymptotics,
identical simulated behavior.

Copied from the tree as of the PR base commit; do not "improve" this file.
"""

from __future__ import annotations

from repro.hw.memory import PAGE_SIZE, Frame, PhysicalMemory
from repro.hw.cpu import PRIO_KERNEL, CpuCore
from repro.kernel.address_space import BadAddress, Vma, page_align, page_count
from repro.kernel.mmu_notifier import MMUNotifierChain
from repro.hw.memory import OutOfMemory
from repro.obs.metrics import resolve_registry
from repro.openmx.regions import RegionState, Segment

__all__ = ["STACK", "SeedAddressSpace", "SeedLinearRegionIndex",
           "SeedPinService", "SeedUserRegion", "seed_segments_pages"]


class SeedAddressSpace:
    """Seed address space: linear VMA walks, per-page dict re-walks."""

    MMAP_BASE = 0x7000_0000_0000

    def __init__(self, memory: PhysicalMemory, name: str = "proc"):
        self.memory = memory
        self.name = name
        self._vmas: dict[int, Vma] = {}
        self._pages: dict[int, Frame] = {}
        self._swap: dict[int, bytes] = {}
        self._next_mmap = self.MMAP_BASE
        self._free_ranges: dict[int, list[int]] = {}
        self.notifiers = MMUNotifierChain()
        self._orphans: set[Frame] = set()
        self.faults = 0
        self.cow_breaks = 0
        self.swapins = 0

    # -- VMA management ------------------------------------------------------
    def mmap(self, length: int) -> int:
        if length <= 0:
            raise ValueError(f"mmap length must be positive, got {length}")
        size = page_count(0, length) * PAGE_SIZE
        reusable = self._free_ranges.get(size)
        if reusable:
            start = reusable.pop()
        else:
            start = self._next_mmap
            self._next_mmap += size + PAGE_SIZE
        self._vmas[start] = Vma(start, start + size)
        return start

    def mmap_fixed(self, start: int, length: int) -> int:
        if start % PAGE_SIZE:
            raise ValueError(f"unaligned fixed mapping at {start:#x}")
        size = page_count(0, length) * PAGE_SIZE
        for addr in range(start, start + size, PAGE_SIZE):
            if self.find_vma(addr) is not None:
                raise BadAddress(f"fixed mapping overlaps existing VMA at {addr:#x}")
        for rsize, starts in self._free_ranges.items():
            self._free_ranges[rsize] = [
                s for s in starts if s + rsize <= start or s >= start + size
            ]
        self._vmas[start] = Vma(start, start + size)
        return start

    def find_vma(self, addr: int) -> Vma | None:
        for vma in self._vmas.values():
            if addr in vma:
                return vma
        return None

    def is_mapped_range(self, addr: int, length: int) -> bool:
        if length <= 0:
            return False
        va = page_align(addr)
        end = addr + length
        while va < end:
            vma = self.find_vma(va)
            if vma is None:
                return False
            va = vma.end
        return True

    def munmap(self, addr: int, length: int) -> None:
        start = page_align(addr)
        end = start + page_count(addr, length) * PAGE_SIZE
        victims = [v for v in self._vmas.values() if v.start >= start and v.end <= end]
        covered = sum(v.length for v in victims)
        if not victims or covered < (end - start):
            inside = self.find_vma(addr)
            if inside is not None and (inside.start < start or inside.end > end):
                raise BadAddress("partial VMA unmap not supported")
            if not victims:
                raise BadAddress(f"munmap of unmapped range {addr:#x}+{length}")
        self.notifiers.invalidate_range(start, end)
        for vma in victims:
            del self._vmas[vma.start]
            for vpn in range(vma.start // PAGE_SIZE, vma.end // PAGE_SIZE):
                frame = self._pages.pop(vpn, None)
                if frame is not None:
                    self._release_frame(frame)
                self._swap.pop(vpn, None)
            self._free_ranges.setdefault(vma.length, []).append(vma.start)

    def destroy(self) -> None:
        self.notifiers.release()
        for vma in list(self._vmas.values()):
            self.munmap(vma.start, vma.length)

    def _release_frame(self, frame: Frame) -> None:
        if frame.pinned:
            self._orphans.add(frame)
        else:
            self.memory.free(frame)

    # -- page table ---------------------------------------------------------
    def page(self, addr: int) -> Frame | None:
        return self._pages.get(addr // PAGE_SIZE)

    def resident_pages(self, addr: int, length: int) -> int:
        first = addr // PAGE_SIZE
        return sum(
            1
            for vpn in range(first, first + page_count(addr, length))
            if vpn in self._pages
        )

    def fault_in(self, addr: int) -> Frame:
        vpn = addr // PAGE_SIZE
        frame = self._pages.get(vpn)
        if frame is not None:
            return frame
        if self.find_vma(addr) is None:
            raise BadAddress(f"fault on unmapped address {addr:#x} in {self.name}")
        frame = self.memory.allocate()
        swapped = self._swap.pop(vpn, None)
        if swapped is not None:
            frame.write(0, swapped)
            self.swapins += 1
        self._pages[vpn] = frame
        self.faults += 1
        return frame

    # -- data access ---------------------------------------------------------
    def write(self, addr: int, data) -> None:
        offset = 0
        data = memoryview(data)
        while offset < len(data):
            va = addr + offset
            frame = self.fault_in(va)
            in_page = va % PAGE_SIZE
            chunk = min(PAGE_SIZE - in_page, len(data) - offset)
            frame.write(in_page, data[offset : offset + chunk])
            offset += chunk

    def read(self, addr: int, length: int) -> bytes:
        out = bytearray()
        offset = 0
        while offset < length:
            va = addr + offset
            frame = self.fault_in(va)
            in_page = va % PAGE_SIZE
            chunk = min(PAGE_SIZE - in_page, length - offset)
            out += frame.read(in_page, chunk)
            offset += chunk
        return bytes(out)

    # -- pinning hooks -------------------------------------------------------
    def pin_page(self, addr: int) -> Frame:
        frame = self.fault_in(addr)
        self.memory.account_pin(frame)
        return frame

    def unpin_frame(self, frame: Frame) -> None:
        self.memory.account_unpin(frame)
        if not frame.pinned and frame in self._orphans:
            self._orphans.discard(frame)
            self.memory.free(frame)

    @property
    def orphan_count(self) -> int:
        return len(self._orphans)

    # -- VM events -----------------------------------------------------------
    def cow_duplicate(self, addr: int, length: int) -> int:
        start = page_align(addr)
        end = addr + length
        if not self.is_mapped_range(addr, length):
            raise BadAddress(f"COW on unmapped range {addr:#x}+{length}")
        self.notifiers.invalidate_range(start, page_align(end - 1) + PAGE_SIZE)
        duplicated = 0
        for vpn in range(start // PAGE_SIZE, (end - 1) // PAGE_SIZE + 1):
            old = self._pages.get(vpn)
            if old is None or old.pinned:
                continue
            new = self.memory.allocate()
            new.copy_contents_from(old)
            self._pages[vpn] = new
            self.memory.free(old)
            self.cow_breaks += 1
            duplicated += 1
        return duplicated

    def migrate(self, addr: int, length: int) -> int:
        return self.cow_duplicate(addr, length)

    def swap_out(self, addr: int, length: int) -> int:
        start = page_align(addr)
        end = addr + length
        if not self.is_mapped_range(addr, length):
            raise BadAddress(f"swap-out of unmapped range {addr:#x}+{length}")
        self.notifiers.invalidate_range(start, page_align(end - 1) + PAGE_SIZE)
        moved = 0
        for vpn in range(start // PAGE_SIZE, (end - 1) // PAGE_SIZE + 1):
            frame = self._pages.get(vpn)
            if frame is None or frame.pinned:
                continue
            self._swap[vpn] = frame.read(0, PAGE_SIZE)
            del self._pages[vpn]
            self.memory.free(frame)
            moved += 1
        return moved


def seed_segments_pages(segments: tuple[Segment, ...]) -> list[int]:
    """Seed page enumeration: one append per covered page."""
    vas: list[int] = []
    for seg in segments:
        first = (seg.va // PAGE_SIZE) * PAGE_SIZE
        for i in range(page_count(seg.va, seg.length)):
            vas.append(first + i * PAGE_SIZE)
    return vas


class SeedUserRegion:
    """Seed region: ``_locate`` scans segments linearly per call."""

    def __init__(self, region_id: int, aspace, segments: tuple[Segment, ...]):
        if not segments:
            raise ValueError("a region needs at least one segment")
        self.id = region_id
        self.aspace = aspace
        self.segments = tuple(segments)
        self.total_length = sum(s.length for s in segments)
        self.page_vas = seed_segments_pages(self.segments)
        self.npages = len(self.page_vas)
        self.frames: list[Frame | None] = [None] * self.npages
        self.watermark = 0
        self.state = RegionState.UNPINNED
        self.destroyed = False
        self.pin_cancelled = False
        self.active_comms = 0
        self.invalidate_pending = False
        self.pin_epoch = 0
        self.bounce: bytes | None = None
        self._index: list[tuple[int, Segment, int]] = []
        off = 0
        page_idx = 0
        for seg in self.segments:
            self._index.append((off, seg, page_idx))
            off += seg.length
            page_idx += page_count(seg.va, seg.length)

    # -- offset geometry -----------------------------------------------------
    def _locate(self, offset: int) -> tuple[Segment, int, int]:
        if not 0 <= offset < self.total_length:
            raise ValueError(f"offset {offset} outside region of {self.total_length}")
        for seg_off, seg, first_page in self._index:
            if seg_off <= offset < seg_off + seg.length:
                delta = offset - seg_off
                va = seg.va + delta
                page = first_page + (va // PAGE_SIZE - seg.va // PAGE_SIZE)
                return seg, delta, page
        raise AssertionError("unreachable")  # pragma: no cover

    def pages_needed(self, offset: int, length: int) -> int:
        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        _, _, last_page = self._locate(offset + length - 1)
        return last_page + 1

    def covers(self, offset: int, length: int) -> bool:
        return self.pages_needed(offset, length) <= self.watermark

    # -- pin state transitions ------------------------------------------------
    def attach_frames(self, start_page: int, frames: list[Frame]) -> None:
        if start_page != self.watermark:
            raise ValueError(
                f"frames attached at page {start_page}, watermark {self.watermark}"
            )
        for i, frame in enumerate(frames):
            self.frames[start_page + i] = frame
        self.watermark = start_page + len(frames)
        if self.watermark == self.npages:
            self.state = RegionState.PINNED

    def take_pinned_frames(self) -> list[Frame]:
        frames = [f for f in self.frames if f is not None]
        self.frames = [None] * self.npages
        self.watermark = 0
        self.state = RegionState.UNPINNED
        self.pin_epoch += 1
        return frames

    def mark_failed(self) -> None:
        self.frames = [None] * self.npages
        self.watermark = 0
        self.state = RegionState.FAILED
        self.pin_epoch += 1

    @property
    def fully_pinned(self) -> bool:
        return self.watermark == self.npages

    # -- data access -----------------------------------------------------------
    def _frame_at(self, offset: int) -> tuple[Frame, int, int]:
        seg, delta, page = self._locate(offset)
        frame = self.frames[page]
        if frame is None:
            raise RuntimeError(
                f"region {self.id}: access at offset {offset} beyond pinned "
                f"watermark (page {page}, watermark {self.watermark})"
            )
        va = seg.va + delta
        in_page = va % PAGE_SIZE
        seg_remaining = seg.length - delta
        avail = min(PAGE_SIZE - in_page, seg_remaining)
        return frame, in_page, avail

    def read(self, offset: int, length: int) -> bytes:
        out = bytearray()
        pos = offset
        remaining = length
        while remaining > 0:
            frame, in_page, avail = self._frame_at(pos)
            chunk = min(avail, remaining)
            out += frame.read(in_page, chunk)
            pos += chunk
            remaining -= chunk
        return bytes(out)

    def write(self, offset: int, data: bytes) -> None:
        pos = offset
        view = memoryview(data)
        done = 0
        while done < len(data):
            frame, in_page, avail = self._frame_at(pos)
            chunk = min(avail, len(data) - done)
            frame.write(in_page, view[done : done + chunk])
            pos += chunk
            done += chunk


class SeedLinearRegionIndex:
    """The seed endpoint-notifier dispatch: scan every region's segments."""

    def __init__(self):
        self._ranges: dict[int, list[tuple[int, int]]] = {}

    def __len__(self) -> int:
        return len(self._ranges)

    def __contains__(self, key: int) -> bool:
        return key in self._ranges

    def add(self, key: int, ranges) -> None:
        if key in self._ranges:
            raise ValueError(f"key {key} already indexed")
        self._ranges[key] = [(s, e) for s, e in ranges]

    def remove(self, key: int) -> None:
        del self._ranges[key]

    def overlapping(self, start: int, end: int) -> list[int]:
        if start >= end:
            return []
        return [
            key
            for key, ranges in self._ranges.items()
            if any(s < end and start < e for s, e in ranges)
        ]


class SeedPinService:
    """Seed pin service: one core acquisition + charge per pinned page."""

    def __init__(self, pin_fraction: float = 0.75, metrics=None, host: str = ""):
        if not 0.0 < pin_fraction < 1.0:
            raise ValueError(f"pin_fraction must be in (0,1), got {pin_fraction}")
        self.pin_fraction = pin_fraction
        self.pins = 0
        self.unpins = 0
        self.pages_pinned = 0
        self.pin_failures = 0
        self.fault_hook = None
        registry = resolve_registry(metrics)
        self.metrics = registry
        lbl = {"host": host}
        self._m_pin_latency = registry.histogram(
            "kernel_pin_latency_ns",
            "get_user_pages latency per pin call (fault + pin references)",
            labelnames=("host",)).labels(**lbl)
        self._m_unpin_latency = registry.histogram(
            "kernel_unpin_latency_ns", "unpin latency per unpin call",
            labelnames=("host",)).labels(**lbl)
        self._m_pinned_pages = registry.gauge(
            "kernel_pinned_pages", "pages currently holding a pin reference",
            labelnames=("host",)).labels(**lbl)
        self._m_pin_failures = registry.counter(
            "kernel_pin_failures", "pin calls that failed (bad range / OOM)",
            labelnames=("host",)).labels(**lbl)

    def account_unpin(self, nframes: int) -> None:
        self.unpins += 1
        self._m_pinned_pages.dec(nframes)

    # -- cost model ---------------------------------------------------------
    def pin_cost_ns(self, core: CpuCore, npages: int) -> int:
        total = core.spec.pin_unpin_cost_ns(npages)
        return int(total * self.pin_fraction)

    def unpin_cost_ns(self, core: CpuCore, npages: int) -> int:
        total = core.spec.pin_unpin_cost_ns(npages)
        return total - int(total * self.pin_fraction)

    def pin_base_ns(self, core: CpuCore) -> int:
        return int(core.spec.pin_base_ns * self.pin_fraction)

    def pin_per_page_ns(self, core: CpuCore) -> int:
        return int(core.spec.pin_per_page_ns * self.pin_fraction)

    # -- operations ----------------------------------------------------------
    def pin_user_pages(self, core, aspace, addr, npages,
                       priority=PRIO_KERNEL, on_page=None, sliced=False):
        from repro.kernel.pinning import PinError

        if npages <= 0:
            raise PinError(f"cannot pin {npages} pages")
        start = (addr // PAGE_SIZE) * PAGE_SIZE
        if not aspace.is_mapped_range(start, npages * PAGE_SIZE):
            self.pin_failures += 1
            self._m_pin_failures.inc()
            raise PinError(
                f"range {start:#x}+{npages}p not mapped in {aspace.name}"
            )
        t_start = core.env.now

        frames: list[Frame] = []
        base = self.pin_base_ns(core)
        per_page = self.pin_per_page_ns(core)

        def charge(cost):
            if sliced:
                yield from core.execute_sliced(cost, priority)
            else:
                yield from core.execute(cost, priority)

        try:
            yield from charge(base)
            if self.fault_hook is not None:
                extra = self.fault_hook.pin_delay_ns(npages)
                if extra > 0:
                    yield from charge(extra)
                if self.fault_hook.pin_should_fail():
                    raise OutOfMemory("injected transient pin failure")
            for i in range(npages):
                yield from charge(per_page)
                frame = aspace.pin_page(start + i * PAGE_SIZE)
                frames.append(frame)
                self.pages_pinned += 1
                self._m_pinned_pages.inc()
                if on_page is not None:
                    on_page(i, frame)
        except (BadAddress, OutOfMemory) as exc:
            if frames:
                yield from self.unpin_user_pages(core, aspace, frames, priority)
            self.pin_failures += 1
            self._m_pin_failures.inc()
            raise PinError(str(exc)) from exc
        self.pins += 1
        self._m_pin_latency.observe(core.env.now - t_start)
        return frames

    def unpin_user_pages(self, core, aspace, frames, priority=PRIO_KERNEL):
        if not frames:
            return
        t_start = core.env.now
        cost = self.unpin_cost_ns(core, len(frames))
        yield from core.execute(cost, priority)
        for frame in frames:
            aspace.unpin_frame(frame)
        self.account_unpin(len(frames))
        self._m_unpin_latency.observe(core.env.now - t_start)

    def unpin_now(self, aspace, frames) -> None:
        for frame in frames:
            aspace.unpin_frame(frame)
        self.account_unpin(len(frames))


STACK = {
    "AddressSpace": SeedAddressSpace,
    "UserRegion": SeedUserRegion,
    "RegionIndex": SeedLinearRegionIndex,
    "PinService": SeedPinService,
}
