"""Frozen pre-coalescing data path, for interleaved A/B benchmarking.

This module preserves the seed implementations of the four data-path
pieces that the event-coalescing change rewrote:

* ``SeedNic`` — one ``transmit()`` *process* per frame, serialized through
  a capacity-1 :class:`repro.sim.Resource`;
* ``SeedFabric`` — one ``deliver()`` process (and one timer) per carried
  frame, no same-instant batching;
* ``SeedHeldContext`` / ``SeedSoftirqEngine`` — the bottom half pays the
  per-packet charge as its own timeout before every dispatch (two heap
  events per frame instead of one fused charge).

``python -m repro.sim.bench --ab-datapath benchmarks/datapath_seed_reference.py``
builds the same two-senders-one-receiver scenario on this stack and on the
current one, strictly interleaved, and refuses to report a speedup unless
both simulations end in exactly the same state (same final clock, same
frame/byte/drop/bh counters) — the optimization contract: fewer heap
events, identical simulated behavior.

Copied from the tree as of the PR base commit; do not "improve" this file.
"""

from __future__ import annotations

from repro.hw.nic import EthernetFrame  # unchanged frame type
from repro.hw.cpu import PRIO_BH, PRIO_USER
from repro.kernel.context import ExecContext
from repro.obs.metrics import resolve_registry
from repro.sim import Resource, Store
from repro.util.units import transfer_time_ns

__all__ = ["STACK", "SeedFabric", "SeedHeldContext", "SeedNic",
           "SeedSoftirqEngine"]


class SeedNic:
    """Seed NIC: per-frame transmit process over a capacity-1 Resource."""

    def __init__(self, env, spec, name, metrics=None):
        self.env = env
        self.spec = spec
        self.name = name
        self.address = name
        self._tx = Resource(env, capacity=1, name=f"{name}/tx")
        self.rx_ring = Store(env, name=f"{name}/rxring")
        self._rx_ring_used = 0
        self.ring_pressure = 0
        self._link = None
        self._on_rx = None
        self._txseq = 0
        self.tx_frames = 0
        self.tx_bytes = 0
        self.rx_frames = 0
        self.rx_bytes = 0
        self.rx_ring_drops = 0
        registry = resolve_registry(metrics)
        self.metrics = registry
        lbl = {"nic": name}
        self._m_tx_frames = registry.counter(
            "nic_tx_frames", "frames serialized onto the wire",
            labelnames=("nic",)).labels(**lbl)
        self._m_tx_bytes = registry.counter(
            "nic_tx_bytes", "payload bytes transmitted",
            labelnames=("nic",)).labels(**lbl)
        self._m_rx_frames = registry.counter(
            "nic_rx_frames", "frames accepted into the RX ring",
            labelnames=("nic",)).labels(**lbl)
        self._m_rx_bytes = registry.counter(
            "nic_rx_bytes", "payload bytes received",
            labelnames=("nic",)).labels(**lbl)
        self._m_rx_drops = registry.counter(
            "nic_rx_ring_drops", "frames tail-dropped on a full RX ring",
            labelnames=("nic",)).labels(**lbl)
        self._m_ring_depth = registry.histogram(
            "nic_rx_ring_depth", "RX ring occupancy sampled at each arrival",
            labelnames=("nic",)).labels(**lbl)

    def attach_link(self, link):
        if self._link is not None:
            raise RuntimeError(f"{self.name} already attached to a link")
        self._link = link

    def set_rx_callback(self, callback):
        self._on_rx = callback

    def transmit(self, frame):
        if self._link is None:
            raise RuntimeError(f"{self.name} is not connected")
        if frame.payload_bytes > self.spec.mtu:
            raise ValueError(
                f"frame payload {frame.payload_bytes} exceeds MTU {self.spec.mtu}"
            )
        with self._tx.request() as req:
            yield req
            wire = frame.wire_bytes(self.spec.frame_overhead_bytes)
            yield self.env.timeout(
                transfer_time_ns(wire, self.spec.link_bytes_per_sec)
            )
        self.tx_frames += 1
        self.tx_bytes += frame.payload_bytes
        self._m_tx_frames.inc()
        self._m_tx_bytes.inc(frame.payload_bytes)
        self._link.carry(frame)

    def send(self, frame):
        self._txseq += 1
        return self.env.process(self.transmit(frame), name=f"{self.name}.tx")

    def deliver(self, frame):
        if self._rx_ring_used + self.ring_pressure >= self.spec.rx_ring_entries:
            self.rx_ring_drops += 1
            self._m_rx_drops.inc()
            return
        self._rx_ring_used += 1
        self.rx_frames += 1
        self.rx_bytes += frame.payload_bytes
        self._m_rx_frames.inc()
        self._m_rx_bytes.inc(frame.payload_bytes)
        self._m_ring_depth.observe(self._rx_ring_used)
        self.rx_ring.put(frame)
        if self._on_rx is not None:
            self._on_rx()

    def ring_pop(self):
        ok, frame = self.rx_ring.try_get()
        if ok:
            self._rx_ring_used -= 1
            return frame
        return None

    def ring_pop_peek_empty(self):
        return self._rx_ring_used == 0


class _SeedPort:
    def __init__(self, fabric, nic):
        self.fabric = fabric
        self.nic = nic

    def carry(self, frame):
        self.fabric._carry(self.nic, frame)


class SeedFabric:
    """Seed fabric: one delivery process and one timer per carried frame."""

    def __init__(self, env, latency_ns=1_000, metrics=None):
        self.env = env
        self.latency_ns = latency_ns
        self._nics = {}
        self._drop_rule = None
        self.fault_injectors = []
        self.frames_carried = 0
        self.frames_dropped = 0
        registry = resolve_registry(metrics)
        self.metrics = registry
        self._m_carried = registry.counter(
            "fabric_frames_carried", "frames the switch forwarded")
        self._m_dropped = registry.counter(
            "fabric_frames_dropped", "frames the switch dropped, by cause",
            labelnames=("reason",))
        self._m_duplicated = registry.counter(
            "fabric_frames_duplicated", "extra frame copies injected")
        self._m_delayed = registry.counter(
            "fabric_frames_delayed", "frames delivered with injected delay")

    def attach(self, nic):
        if nic.address in self._nics:
            raise ValueError(f"duplicate NIC address {nic.address}")
        self._nics[nic.address] = nic
        nic.attach_link(_SeedPort(self, nic))

    def add_fault_injector(self, injector):
        self.fault_injectors.append(injector)

    def _drop(self, reason):
        self.frames_dropped += 1
        self._m_dropped.labels(reason=reason).inc()

    def _carry(self, src_nic, frame):
        if self._drop_rule is not None and self._drop_rule(frame):
            self._drop("drop_rule")
            return
        copies = 1
        extra_delay = 0
        for injector in self.fault_injectors:
            verdict = injector.on_frame(frame, self.env.now)
            if verdict is None:
                continue
            if verdict.drop:
                self._drop(verdict.drop_reason)
                return
            if verdict.duplicate:
                copies += 1
            extra_delay += verdict.extra_delay_ns
        dst = self._nics.get(frame.dst)
        if dst is None:
            self._drop("no_route")
            return
        self.frames_carried += 1
        self._m_carried.inc()
        if copies > 1:
            self._m_duplicated.inc(copies - 1)
        if extra_delay > 0:
            self._m_delayed.inc()

        def deliver():
            yield self.env.timeout(self.latency_ns + extra_delay)
            dst.deliver(frame)

        for _ in range(copies):
            self.env.process(deliver(), name="fabric.deliver")

    def addresses(self):
        return list(self._nics)


class SeedHeldContext(ExecContext):
    """Seed held context: every charge is its own timeout, no deferral."""

    def charge(self, cost_ns):
        if cost_ns > 0:
            yield self.env.timeout(cost_ns)


class SeedSoftirqEngine:
    """Seed bottom half: separate per-packet charge before each dispatch."""

    def __init__(self, env, core, nic, dispatch, budget=64, metrics=None):
        self.env = env
        self.core = core
        self.nic = nic
        self.dispatch = dispatch
        self.budget = budget
        self._scheduled = False
        self.bh_runs = 0
        self.frames_processed = 0
        self.ksoftirqd_rounds = 0
        registry = resolve_registry(metrics)
        self.metrics = registry
        lbl = {"nic": nic.name}
        self._m_bh_runs = registry.counter(
            "softirq_bh_runs", "bottom-half activations (core acquisitions)",
            labelnames=("nic",)).labels(**lbl)
        self._m_frames = registry.counter(
            "softirq_frames_processed", "frames drained by the bottom half",
            labelnames=("nic",)).labels(**lbl)
        self._m_ksoftirqd = registry.counter(
            "softirq_ksoftirqd_rounds",
            "budget exhaustions continued at normal priority (ksoftirqd)",
            labelnames=("nic",)).labels(**lbl)
        self._m_backlog = registry.histogram(
            "softirq_backlog_depth",
            "RX ring occupancy when the bottom half gets the core",
            labelnames=("nic",)).labels(**lbl)

    def raise_irq(self):
        if self._scheduled:
            return
        self._scheduled = True
        self.env.process(self._bottom_half(), name=f"{self.nic.name}.bh")

    def _bottom_half(self):
        spec = self.core.spec
        priority = PRIO_BH
        while True:
            drained = False
            with self.core.request(priority) as req:
                yield req
                self.bh_runs += 1
                self._m_bh_runs.inc()
                self._m_backlog.observe(self.nic._rx_ring_used)
                ctx = SeedHeldContext(self.env, self.core, priority)
                yield from ctx.charge(spec.irq_entry_ns)
                for _ in range(self.budget):
                    frame = self.nic.ring_pop()
                    if frame is None:
                        drained = True
                        break
                    self.frames_processed += 1
                    self._m_frames.inc()
                    yield from ctx.charge(spec.bh_per_packet_ns)
                    yield from self.dispatch(frame, ctx)
                else:
                    drained = self.nic.ring_pop_peek_empty()
            if drained:
                self._scheduled = False
                return
            self.ksoftirqd_rounds += 1
            self._m_ksoftirqd.inc()
            priority = PRIO_USER


# The class set repro.sim.bench's datapath scenario builds against.
STACK = {
    "EthernetFrame": EthernetFrame,
    "Nic": SeedNic,
    "Fabric": SeedFabric,
    "SoftirqEngine": SeedSoftirqEngine,
    "HeldContext": SeedHeldContext,
}
