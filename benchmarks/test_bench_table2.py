"""Benchmark: regenerate Table 2 (IMB + NPB improvements, 2 nodes)."""

from benchmarks.conftest import full_sweep
from repro.experiments.table2 import TABLE2_BENCHMARKS, run_table2
from repro.experiments.table2 import format_table2
from repro.workloads import IsConfig
from repro.util.units import KIB, MIB

# Paper's Table 2 for reference (cache %, overlap %).
PAPER = {
    "IMB SendRecv": (8.4, 5.5),
    "IMB Allgatherv": (7.5, 6.8),
    "IMB Broadcast": (4.4, 2.0),
    "IMB Reduce": (7.6, 0.2),
    "IMB Allreduce": (2.2, -0.6),
    "IMB Reduce_scatter": (7.9, -0.8),
    "IMB Exchange": (-1.4, -2.7),
    "NPB is (scaled C.4)": (4.2, 1.9),
}


def test_table2(run_once):
    if full_sweep():
        benchmarks, sizes, is_config = TABLE2_BENCHMARKS, None, None
    else:
        benchmarks = TABLE2_BENCHMARKS
        sizes = [256 * KIB, 1 * MIB]
        is_config = IsConfig()  # the default scaled problem
    rows = run_once(run_table2, benchmarks, sizes, True, is_config)
    print()
    print(format_table2(rows))
    print("\nPaper's Table 2 for comparison:")
    for app, (c, o) in PAPER.items():
        print(f"  {app:22s} {c:+5.1f} %   {o:+5.1f} %")

    by_name = {r.application: r for r in rows}
    # Shape assertions (who wins, roughly by how much):
    # 1. The pinning cache helps every large-message collective here
    #    (the paper's one negative, Exchange, is within noise of zero).
    for name in ["IMB SendRecv", "IMB Allgatherv", "IMB Broadcast",
                 "IMB Reduce", "IMB Allreduce", "IMB Reduce_scatter"]:
        assert by_name[name].cache_improvement_pct > 0, name
        assert by_name[name].cache_improvement_pct < 15, name
    # 2. For the collectives, overlap's benefit never exceeds the cache's
    #    by more than a hair, and it is near zero (or negative) for the
    #    exchange-style patterns.  (IS is compute-laden and its ~1.5%
    #    signal sits near noise, so it is range-checked separately.)
    for r in rows:
        if r.application.startswith("IMB"):
            assert r.overlap_improvement_pct <= r.cache_improvement_pct + 1.5, r
    assert by_name["IMB Exchange"].overlap_improvement_pct < 2.5
    # 3. IS: both optimizations land in a small band around the paper's
    #    +4.2% / +1.9% (scaled problem -> smaller absolute signal).
    is_row = by_name["NPB is (scaled C.4)"]
    assert -2.0 < is_row.cache_improvement_pct < 8
    assert -2.0 < is_row.overlap_improvement_pct < 8
