"""Benchmark: ablations for the design choices (Section 5 discussion)."""

from repro.experiments.ablations import (
    run_cache_capacity_ablation,
    run_overlap_check_ablation,
    run_pipeline_ablation,
)


def test_pipeline_vs_driver_overlap(run_once):
    points = run_once(run_pipeline_ablation)
    print()
    for p in points:
        print(f"  {p.label:32s} {p.value:8.1f} MiB/s")
    driver = points[-1]
    assert driver.label.startswith("driver-level")
    # The paper's whole-message overlap beats every realistic pipeline
    # chunk size (small chunks pay per-chunk handshakes; huge chunks lose
    # the overlap).
    for p in points[:-1]:
        assert driver.value > p.value, (p.label, p.value, driver.value)


def test_cache_capacity_hit_rate(run_once):
    points = run_once(run_cache_capacity_ablation)
    print()
    for p in points:
        print(f"  {p.label:16s} hit rate {p.value:.2f}")
    rates = [p.value for p in points]
    # Hit rate grows with capacity and saturates once all buffers fit.
    assert rates == sorted(rates)
    assert rates[-1] > 0.4
    assert rates[0] < rates[-1]


def test_overlap_check_cost_negligible(run_once):
    points = run_once(run_overlap_check_ablation)
    print()
    for p in points:
        print(f"  {p.label:16s} {p.value:8.1f} MiB/s")
    # Paper: the per-packet descriptor test at its real cost (~30 ns) is
    # negligible (<1%); only a 20x exaggeration makes it visible, and even
    # then it stays under 10%.
    base, realistic, exaggerated = points[0].value, points[1].value, points[-1].value
    assert (base - realistic) / base < 0.01
    assert (base - exaggerated) / base < 0.10
