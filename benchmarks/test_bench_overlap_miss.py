"""Benchmark: regenerate the Section 4.3 overlap-miss study."""

from repro.experiments.overlap_miss import (
    run_miss_probability,
    run_overloaded_core,
)
from repro.util.units import MIB


def test_miss_probability_under_regular_load(run_once):
    result = run_once(run_miss_probability)
    print(f"\noverlap misses: {result.overlap_misses} / "
          f"{result.data_packets} packets (rate {result.miss_rate:.2e})")
    # Paper: less than 1 packet out of 10000.
    assert result.data_packets > 5_000
    assert result.miss_rate < 1e-4


def test_overloaded_core_collapse(run_once):
    result = run_once(run_overloaded_core, 1 * MIB, 1)
    print(f"\nnormal: {result.normal_mib_s:.0f} MiB/s, overloaded: "
          f"{result.overloaded_mib_s:.1f} MiB/s "
          f"(x{result.slowdown:.0f}), misses={result.overlap_misses}, "
          f"BH core {result.bh_core_utilization:.0%} busy")
    # Paper: 1 GB/s down to 50 MB/s (~20x).  Shape: an order of magnitude
    # or more, driven by actual overlap misses on a saturated core.
    assert result.slowdown > 8
    assert result.overlap_misses > 0
    assert result.bh_core_utilization > 0.9
