"""Benchmark: the introduction's motivation (MPI-over-TCP vs Open-MX)."""

from repro.experiments.motivation import format_motivation, run_motivation


def test_motivation(run_once):
    rows = run_once(run_motivation)
    print()
    print(format_motivation(rows))
    by_stack = {(r.stack, r.mtu): r for r in rows}
    tcp1500 = by_stack[("MPI over TCP", 1500)]
    tcp9000 = by_stack[("MPI over TCP", 9000)]
    omx = by_stack[("Open-MX", 9000)]
    omx_ioat = by_stack[("Open-MX + I/OAT", 9000)]

    # "higher throughput": Open-MX beats TCP even at TCP's best (jumbo).
    assert omx.throughput_mib_s > tcp9000.throughput_mib_s
    assert omx_ioat.throughput_mib_s > omx.throughput_mib_s
    # At the commodity default MTU the gap is dramatic.
    assert tcp1500.throughput_mib_s < 0.5 * omx.throughput_mib_s
    # "lower CPU overhead": per received KiB, zero-copy send + single
    # (offloadable) receive copy beats TCP's two copies per side.
    assert omx.rx_cpu_ns_per_kb < tcp9000.rx_cpu_ns_per_kb
    assert omx_ioat.rx_cpu_ns_per_kb < 0.75 * tcp9000.rx_cpu_ns_per_kb
