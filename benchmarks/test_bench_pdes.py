"""Benchmark + equivalence guardrails for the conservative-PDES change.

The contract under test: partitioning ``pdes_soak`` across forked shard
workers simulates *exactly* the same world as the serial run — identical
end-state digest for every shard count, clean and chaos — while the
coordinator's critical path (slowest shard per window, CPU time) shrinks
with the shard count, which is the wall-time win on a multi-core host.
"""

import json
from pathlib import Path

from repro.sim.bench import run_pdes_soak
from repro.sim.pdes import pdes_sim_state, run_pdes_ab, run_shards, soak_params

from benchmarks.conftest import full_sweep

QUICK_STATE = Path(__file__).with_name("pdes_sim_quick.json")


def test_pdes_ab_identical_end_state(run_once):
    # run_pdes_ab raises SystemExit if the serial and sharded runs
    # disagree on any end-state byte.
    report = run_once(run_pdes_ab, quick=not full_sweep(), shards=4,
                      repeat=1)
    assert report["shards"] == 4
    assert report["windows"] > 1
    assert report["cross_shard_frames"] > 0
    assert report["critical_path_s"] > 0
    print()
    print(f"pdes_soak: serial {report['serial_wall_s']:.3f}s vs "
          f"4 shards {report['sharded_wall_s']:.3f}s "
          f"({report['speedup']:.2f}x wall on {report['host_cores']} "
          f"core(s), {report['critical_path_speedup']:.2f}x critical path)")


def test_every_shard_count_lands_on_one_digest():
    params = soak_params(quick=True)
    digests = {run_shards(params, n, mode="inline")["state"]["digest"]
               for n in (1, 2, 4, 8)}
    assert len(digests) == 1


def test_critical_path_shrinks_with_shards():
    quick = not full_sweep()
    serial = run_pdes_soak(quick=quick, shards=1, repeat=1)
    sharded = run_pdes_soak(quick=quick, shards=4, repeat=1)
    assert sharded["digest"] == serial["digest"]
    assert sharded["events"] == serial["events"]
    # CPU time along the critical path is contention-free, so this holds
    # even on a single-core CI runner where wall time cannot improve.
    assert sharded["critical_path_s"] < serial["critical_path_s"]


def test_committed_quick_state_matches_current_tree():
    committed = json.loads(QUICK_STATE.read_text())
    fresh = pdes_sim_state(quick=True,
                           shards=committed["shards"])
    assert fresh == committed, (
        "pdes_soak end state changed — if intentional, regenerate with "
        "PYTHONPATH=src python -m repro.sim.bench --quick "
        "--pdes-sim-json benchmarks/pdes_sim_quick.json --shards "
        f"{committed['shards']}"
    )


# -- full-stack openmx_shard --------------------------------------------------

OPENMX_QUICK_STATE = Path(__file__).with_name("openmx_shard_quick.json")


def test_openmx_ab_identical_end_state(run_once):
    from repro.sim.openmx_shard import run_openmx_ab

    # Raises SystemExit if serial and sharded full-stack runs disagree on
    # any end-state byte, for any partition strategy.
    report = run_once(run_openmx_ab, quick=not full_sweep(), shards=4,
                      repeat=1)
    assert report["shards"] == 4
    assert report["nhosts"] >= 16
    assert report["windows"] > 1
    assert report["cross_shard_frames"] > 0
    assert report["critical_path_s"] > 0
    assert isinstance(report["core_starved"], bool)
    assert report["strategies"]["affinity"] <= report["strategies"]["block"]
    print()
    print(f"openmx_shard: serial {report['serial_wall_s']:.3f}s vs "
          f"4 shards {report['sharded_wall_s']:.3f}s "
          f"({report['speedup']:.2f}x wall on {report['host_cores']} "
          f"core(s), {report['critical_path_speedup']:.2f}x critical path; "
          f"affinity cut {report['affinity_cut_vs_block']:.1%} vs block)")


def test_openmx_every_shard_count_lands_on_one_digest():
    from repro.sim.openmx_shard import openmx_params, run_openmx

    params = openmx_params(quick=True)
    serial = run_openmx(params, 1, mode="inline")
    for n in (2, 4, 8):
        sharded = run_openmx(params, n, mode="inline")
        assert sharded["state"] == serial["state"]
        assert sharded["state"]["events"] == serial["state"]["events"]


def test_openmx_critical_path_shrinks_with_shards():
    from repro.sim.bench import run_openmx_shard

    quick = not full_sweep()
    serial = run_openmx_shard(quick=quick, shards=1, repeat=1)
    sharded = run_openmx_shard(quick=quick, shards=4, repeat=1)
    assert sharded["digest"] == serial["digest"]
    assert sharded["events"] == serial["events"]
    assert sharded["critical_path_s"] < serial["critical_path_s"]


def test_openmx_committed_quick_state_matches_current_tree():
    from repro.sim.openmx_shard import openmx_sim_state

    committed = json.loads(OPENMX_QUICK_STATE.read_text())
    fresh = openmx_sim_state(quick=True, shards=committed["shards"])
    assert fresh == committed, (
        "openmx_shard end state changed — if intentional, regenerate with "
        "PYTHONPATH=src python -m repro.sim.bench --quick "
        "--openmx-sim-json benchmarks/openmx_shard_quick.json --shards "
        f"{committed['shards']}"
    )
