"""Benchmark + equivalence guardrails for the data-path coalescing change.

The contract under test: the coalesced TX pump / fabric batch / fused-BH
stack must simulate *exactly* the same world as the frozen per-frame seed
stack (``datapath_seed_reference.py``) while dispatching fewer heap events
— and anything a fault injector can touch must fall back to the historical
per-frame slow path, again without moving a single timestamp or counter.
"""

from pathlib import Path

import pytest

from repro.cluster.network import FrameVerdict
from repro.sim import Environment
from repro.sim.bench import SCENARIOS, _datapath_pull, run_datapath_ab

from benchmarks.conftest import full_sweep

SEED_STACK = Path(__file__).with_name("datapath_seed_reference.py")
QUICK_ROUNDS = SCENARIOS["datapath_pull"][2]


def _run(rounds=3, stack=None, rig=None):
    """Build + run the datapath scenario; return (end state, probe)."""
    env = Environment()
    probe = _datapath_pull(env, rounds, stack=stack)
    if rig is not None:
        rig(probe)
    env.run()
    return probe(), probe


def test_datapath_ab_identical_end_state_fewer_events(run_once):
    # run_datapath_ab raises SystemExit if the seed stack and the current
    # stack disagree on any simulated end-state field.
    report = run_once(run_datapath_ab, str(SEED_STACK),
                      quick=not full_sweep(), repeat=1)
    assert report["events"] < report["baseline_events"]
    assert report["event_reduction"] > 0.5
    assert report["sim_state"]["handled_frames"] > 0
    assert report["sim_state"]["ksoftirqd_rounds"] > 0  # budget really trips
    print()
    print(f"datapath_pull: {report['event_reduction']:.1%} fewer events, "
          f"{report['speedup']:.2f}x vs seed stack")


def test_clean_run_takes_fabric_fast_path():
    state, probe = _run()
    assert probe.fabric.frames_batched == state["frames_carried"] > 0


def test_injector_forces_slow_path_identical_results():
    # A fault injector with no opinion on any frame must not change a
    # thing — except which fabric path runs.
    class NoOpinion:
        def on_frame(self, frame, now):
            return None

    clean_state, _ = _run()
    slow_state, probe = _run(
        rig=lambda p: p.fabric.add_fault_injector(NoOpinion()))
    assert probe.fabric.frames_batched == 0
    assert slow_state == clean_state


def test_ring_pressure_forces_per_frame_delivery_identical_results():
    # Phantom RX pressure small enough to cause no drops: delivery must
    # leave the batching path yet land every frame at the same instants.
    clean_state, _ = _run()
    pressured_state, probe = _run(
        rig=lambda p: setattr(p.rx_nic, "ring_pressure", 1))
    assert probe.fabric.frames_batched == 0
    assert pressured_state == clean_state
    assert pressured_state["rx_ring_drops"] == 0


class _DupDelay:
    """Deterministic duplicate + extra-delay injector (no randomness)."""

    def __init__(self):
        self.count = 0

    def on_frame(self, frame, now):
        self.count += 1
        if self.count % 17 == 0:
            return FrameVerdict(duplicate=True)
        if self.count % 13 == 0:
            return FrameVerdict(extra_delay_ns=500)
        return None


def test_faulted_run_matches_seed_stack_bit_for_bit():
    # Duplicates and injected delay take the per-frame slow path on both
    # stacks; the resulting worlds must be indistinguishable.
    from benchmarks.datapath_seed_reference import STACK

    seed_state, _ = _run(stack=STACK,
                         rig=lambda p: p.fabric.add_fault_injector(_DupDelay()))
    cur_state, probe = _run(
        rig=lambda p: p.fabric.add_fault_injector(_DupDelay()))
    assert probe.fabric.frames_batched == 0
    assert cur_state == seed_state
    # The injector really fired: duplicates inflate RX over TX.
    assert cur_state["rx_frames"] > cur_state["tx_frames"]


def test_quick_sim_state_matches_committed_reference():
    # The CI drift gate's reference: regenerate and compare exactly —
    # the simulation is deterministic, so equality is the bar, not 2%.
    import json

    committed = json.loads(
        Path(__file__).with_name("datapath_sim_quick.json").read_text())
    state, _ = _run(rounds=QUICK_ROUNDS)
    assert state == committed["state"]
