"""Benchmark: the buffer-reuse sweep (the paper's complementarity claim —
Sections 4.2/5: the cache needs reuse, overlap helps regardless)."""

from repro.experiments.reuse_sweep import format_reuse_sweep, run_reuse_sweep


def test_reuse_sweep(run_once):
    rows = run_once(run_reuse_sweep)
    print()
    print(format_reuse_sweep(rows))
    no_reuse, full_reuse = rows[0], rows[-1]
    # The cache's gain grows with reuse...
    gains = [r.cache_gain_pct for r in rows]
    assert gains == sorted(gains)
    assert full_reuse.cache_gain_pct > no_reuse.cache_gain_pct + 1.5
    # ...while overlap's gain is flat (within 1%) across the sweep...
    overlap_gains = [r.overlap_gain_pct for r in rows]
    assert max(overlap_gains) - min(overlap_gains) < 1.0
    # ...so overlap wins without reuse and the cache wins with full reuse.
    assert no_reuse.overlap_mib_s > no_reuse.cache_mib_s
    assert full_reuse.cache_mib_s > full_reuse.overlap_mib_s
    # Every strategy still beats regular pinning everywhere.
    for r in rows:
        assert r.cache_mib_s > r.regular_mib_s
        assert r.overlap_mib_s > r.regular_mib_s