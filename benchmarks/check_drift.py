#!/usr/bin/env python
"""Flag shape drift between two ``--json`` result files.

CI regenerates the quick experiment sweep and compares it against the
committed baseline (``benchmarks/baseline_results.json``) with
:func:`repro.experiments.runner.compare_results`.  Any numeric leaf that
moved by more than the tolerance (default 2%) fails the job — the
simulation is deterministic, so on identical code the diff must be empty
and *any* drift means a change altered reproduced results without
refreshing the baseline.

Usage::

    PYTHONPATH=src python benchmarks/check_drift.py \
        benchmarks/baseline_results.json fresh.json [--tolerance 0.02]
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.runner import compare_results, load_results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline results JSON")
    parser.add_argument("fresh", help="freshly generated results JSON")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="relative drift tolerance (default 0.02)")
    args = parser.parse_args(argv)

    diffs = compare_results(load_results(args.baseline),
                            load_results(args.fresh),
                            rel_tolerance=args.tolerance)
    if diffs:
        print(f"{len(diffs)} leaf/leaves drifted more than "
              f"{args.tolerance:.0%} vs {args.baseline}:", file=sys.stderr)
        for line in diffs:
            print(f"  {line}", file=sys.stderr)
        print("If the change is intentional, regenerate the baseline:\n"
              "  PYTHONPATH=src python -m repro.experiments "
              "--json benchmarks/baseline_results.json", file=sys.stderr)
        return 1
    print(f"no drift beyond {args.tolerance:.0%} "
          f"({args.baseline} vs {args.fresh})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
