#!/usr/bin/env python
"""Flag shape drift between two ``--json`` result files.

CI regenerates the quick experiment sweep and compares it against the
committed baseline (``benchmarks/baseline_results.json``).  Any numeric
leaf that moved by more than the tolerance (default 2%) fails the job —
the simulation is deterministic, so on identical code the diff must be
empty and *any* drift means a change altered reproduced results without
refreshing the baseline.

The failure message names every breaching leaf with its baseline value,
fresh value, absolute delta and relative drift, worst offender first, so
the CI log says *what* moved and *by how much* without re-running
anything locally.

Usage::

    PYTHONPATH=src python benchmarks/check_drift.py \
        benchmarks/baseline_results.json fresh.json [--tolerance 0.02]
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Any

from repro.experiments.runner import _numeric_leaves, load_results


def find_breaches(old: dict[str, Any], new: dict[str, Any],
                  rel_tolerance: float = 0.02) -> list[dict[str, Any]]:
    """Numeric leaves that drifted beyond ``rel_tolerance``, worst first.

    Each breach is ``{"key", "baseline", "fresh", "delta", "rel"}``;
    a leaf present on only one side has ``None`` for the missing value
    and infinite relative drift (structure changes always sort first).
    """
    old_leaves = _numeric_leaves(old)
    new_leaves = _numeric_leaves(new)
    breaches: list[dict[str, Any]] = []
    for key in sorted(set(old_leaves) | set(new_leaves)):
        a = old_leaves.get(key)
        b = new_leaves.get(key)
        if a is None or b is None:
            breaches.append({"key": key, "baseline": a, "fresh": b,
                             "delta": None, "rel": math.inf})
            continue
        rel = abs(a - b) / max(abs(a), abs(b), 1e-12)
        if rel > rel_tolerance:
            breaches.append({"key": key, "baseline": a, "fresh": b,
                             "delta": b - a, "rel": rel})
    breaches.sort(key=lambda br: (-br["rel"], br["key"]))
    return breaches


def format_breaches(breaches: list[dict[str, Any]], tolerance: float,
                    baseline_path: str) -> str:
    """Render breaches for the CI log: one line per leaf, worst first."""
    lines = [f"{len(breaches)} leaf/leaves breached the {tolerance:.0%} "
             f"drift gate vs {baseline_path} (worst first):"]
    for br in breaches:
        if br["baseline"] is None:
            lines.append(f"  {br['key']}: only in fresh results "
                         f"(= {br['fresh']:g})")
        elif br["fresh"] is None:
            lines.append(f"  {br['key']}: missing from fresh results "
                         f"(baseline {br['baseline']:g})")
        else:
            lines.append(
                f"  {br['key']}: {br['baseline']:g} -> {br['fresh']:g} "
                f"({br['delta']:+g} absolute, {br['rel']:.1%} drift "
                f"> {tolerance:.0%})")
    worst = breaches[0]
    what = ("structure changed" if worst["delta"] is None
            else f"{worst['rel']:.1%} drift")
    lines.append(f"worst offender: {worst['key']} ({what})")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline results JSON")
    parser.add_argument("fresh", help="freshly generated results JSON")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="relative drift tolerance (default 0.02)")
    args = parser.parse_args(argv)

    breaches = find_breaches(load_results(args.baseline),
                             load_results(args.fresh),
                             rel_tolerance=args.tolerance)
    if breaches:
        print(format_breaches(breaches, args.tolerance, args.baseline),
              file=sys.stderr)
        print("If the change is intentional, regenerate the baseline:\n"
              "  PYTHONPATH=src python -m repro.experiments "
              "--json benchmarks/baseline_results.json", file=sys.stderr)
        return 1
    print(f"no drift beyond {args.tolerance:.0%} "
          f"({args.baseline} vs {args.fresh})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
