"""Benchmark: regenerate Figure 7 (regular vs overlapped vs cache vs
overlapped+cache pinning)."""

from benchmarks.conftest import full_sweep
from repro.experiments.figures67 import (
    FAST_SIZES,
    FIGURE_SIZES,
    format_series_table,
    run_figure7,
)


def test_figure7(run_once):
    sizes = FIGURE_SIZES if full_sweep() else FAST_SIZES
    series = run_once(run_figure7, sizes)
    print()
    print(format_series_table(series, "Figure 7: IMB PingPong (MiB/s)"))
    regular, overlapped, cache, overlap_cache = series

    big = sizes[-1]
    # Both optimizations clearly beat regular pinning...
    assert overlapped.throughput_at(big) > regular.throughput_at(big)
    assert cache.throughput_at(big) > regular.throughput_at(big)
    assert overlap_cache.throughput_at(big) > regular.throughput_at(big)
    # ...and the improvement is the expected ~5% band on the Xeon E5460.
    gain_cache = cache.throughput_at(big) / regular.throughput_at(big) - 1
    gain_overlap = overlapped.throughput_at(big) / regular.throughput_at(big) - 1
    assert 0.03 < gain_cache < 0.12, gain_cache
    assert 0.02 < gain_overlap < 0.12, gain_overlap
    # The cache and overlap curves sit close together (within a few %).
    for size in sizes:
        ratio = overlapped.throughput_at(size) / cache.throughput_at(size)
        assert 0.85 < ratio <= 1.05, (size, ratio)
