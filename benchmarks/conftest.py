"""Shared benchmark configuration.

Every benchmark runs a deterministic simulation, so a single round gives
exact, reproducible numbers — ``run_once`` wraps ``benchmark.pedantic``
accordingly.  Set ``REPRO_FULL=1`` to sweep the paper's complete message
size axis instead of the quick subset.
"""

import os

import pytest


def full_sweep() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture
def run_once(benchmark):
    """Run a deterministic experiment exactly once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
