"""Benchmark: regenerate Figure 6 (pingpong, pin-per-comm vs permanent,
with and without I/OAT)."""

from benchmarks.conftest import full_sweep
from repro.experiments.figures67 import (
    FAST_SIZES,
    FIGURE_SIZES,
    format_series_table,
    run_figure6,
)
from repro.util.units import MIB


def test_figure6(run_once):
    sizes = FIGURE_SIZES if full_sweep() else FAST_SIZES
    series = run_once(run_figure6, sizes)
    print()
    print(format_series_table(series, "Figure 6: IMB PingPong (MiB/s)"))
    per_comm, permanent, per_comm_ioat, permanent_ioat = series

    for size in sizes:
        # Permanent pinning always beats pin-per-communication.
        assert permanent.throughput_at(size) > per_comm.throughput_at(size)
        assert permanent_ioat.throughput_at(size) > per_comm_ioat.throughput_at(size)
        # I/OAT lifts throughput for the same pinning mode.
        assert permanent_ioat.throughput_at(size) > permanent.throughput_at(size)

    big = 16 * MIB if full_sweep() else sizes[-1]
    gap = 1 - per_comm.throughput_at(big) / permanent.throughput_at(big)
    # Paper: ~5% impact on the fast Xeon (we land in a 3-12% band).
    assert 0.03 < gap < 0.12, f"pinning impact {gap:.1%} out of band"
    # Curves rise with message size and peak around 1000-1200 MiB/s.
    peak = permanent_ioat.throughput_at(big)
    assert 1000 < peak < 1250, peak
    assert permanent.points[0][1] < permanent.points[-1][1]
