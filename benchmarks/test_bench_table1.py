"""Benchmark: regenerate Table 1 (pinning overhead per CPU)."""

import pytest

from repro.experiments.table1 import format_table1, run_table1

# Paper's Table 1, for shape assertions.
PAPER = {
    "Opteron 265": (4.2, 720, 5.5),
    "Opteron 8347": (2.2, 330, 12.0),
    "Xeon E5435": (2.3, 250, 16.0),
    "Xeon E5460": (1.3, 150, 26.5),
}


def test_table1(run_once):
    rows = run_once(run_table1)
    print()
    print(format_table1(rows))
    assert len(rows) == 4
    for row in rows:
        base_us, per_page_ns, gb_s = PAPER[row.cpu]
        # The measured fit must recover the paper's constants closely.
        assert row.base_us == pytest.approx(base_us, rel=0.15)
        assert row.per_page_ns == pytest.approx(per_page_ns, rel=0.05)
        assert row.throughput_gb_s == pytest.approx(gb_s, rel=0.15)
    # Monotonicity: faster clocks pin faster.
    ordered = sorted(rows, key=lambda r: r.ghz)
    throughputs = [r.throughput_gb_s for r in ordered]
    assert throughputs == sorted(throughputs)
