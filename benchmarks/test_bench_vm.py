"""Benchmark + equivalence guardrails for the VM-layer index change.

The contract under test: the bisect-indexed AddressSpace, the
interval-dispatched notifier index, the prefix-array region geometry and
the fused pin charge must simulate *exactly* the same world as the frozen
linear seed stack (``vm_seed_reference.py``) while dispatching fewer heap
events — and the fused pin path must stand down (slow per-page path, same
timestamps) the moment anything could observe the difference.
"""

import json
from pathlib import Path

from repro.sim import Environment
from repro.sim.bench import SCENARIOS, _vm_churn, run_vm_ab

from benchmarks.conftest import full_sweep

SEED_STACK = Path(__file__).with_name("vm_seed_reference.py")
QUICK_ROUNDS = SCENARIOS["vm_churn"][2]


def _run(rounds=QUICK_ROUNDS, stack=None):
    env = Environment()
    probe = _vm_churn(env, rounds, stack=stack)
    env.run()
    return probe()


def test_vm_ab_identical_end_state_fewer_events(run_once):
    # run_vm_ab raises SystemExit if the seed stack and the current stack
    # disagree on any simulated end-state field (clock, any per-process
    # counter, any data digest).
    report = run_once(run_vm_ab, str(SEED_STACK),
                      quick=not full_sweep(), repeat=1)
    assert report["events"] < report["baseline_events"]
    assert report["event_reduction"] > 0.5
    procs = report["sim_state"]["procs"]
    assert all(p is not None for p in procs)
    # The scenario really exercised the indexed paths on every process.
    assert all(p["faults"] > 0 for p in procs)
    assert all(p["pins"] > 0 for p in procs)
    assert all(p["invalidations"] > 0 for p in procs)
    assert sum(p["notifier_unpins"] for p in procs) > 0
    assert sum(p["reuse_hits"] for p in procs) > 0
    assert sum(p["swapins"] for p in procs) > 0
    assert sum(p["cow_breaks"] for p in procs) > 0
    print()
    print(f"vm_churn: {report['event_reduction']:.1%} fewer events, "
          f"{report['speedup']:.2f}x vs seed stack")


def test_vm_seed_and_current_states_match_directly():
    # Same comparison as the A/B harness, but without timing machinery —
    # a plain double run must land on the identical end state too.
    from benchmarks.vm_seed_reference import STACK

    assert _run(stack=STACK) == _run()


def test_quick_sim_state_matches_committed_reference():
    # The CI drift gate's reference: regenerate and compare exactly — the
    # simulation is deterministic, so equality is the bar, not 2%.
    committed = json.loads(
        Path(__file__).with_name("vm_sim_quick.json").read_text())
    assert _run(rounds=committed["rounds"]) == committed["state"]
