"""Discrete-event simulation engine.

This is the foundational substrate of the reproduction: every other layer
(hardware, kernel, Open-MX protocol, MPI) is expressed as generator-based
processes scheduled by the :class:`Environment` defined here.

The engine is a small, deterministic SimPy-like kernel:

* time is an integer number of nanoseconds (no floating point drift),
* events carry a value or an exception and run callbacks when *processed*,
* processes are Python generators that ``yield`` events and resume when the
  yielded event fires,
* ties in the event queue are broken by insertion order, which makes every
  simulation run bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
import time as _time
from collections.abc import Callable, Generator, Iterable
from typing import Any

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation engine itself."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The interrupting party supplies ``cause`` which the interrupted process
    can inspect (e.g. a retransmission timer firing, or a forced unpin).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event lifecycle markers.
_PENDING = object()


class Event:
    """A happening at a point in simulated time.

    An event starts *untriggered*; calling :meth:`succeed` or :meth:`fail`
    schedules it for processing at the current simulation time, after which
    its callbacks run and any waiting processes resume.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_waiters", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = _PENDING
        self._ok: bool | None = None
        self._scheduled = False
        self._waiters = 0
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (callback use)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at t={self.env.now}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay)


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment"):
        super().__init__(env)
        self._ok = True
        self._value = None
        env._schedule(self)


class Process(Event):
    """A running generator; also an event that fires when the generator ends.

    The generator may ``yield`` any :class:`Event`. If the yielded event
    fails and the generator does not catch the exception, the process fails
    with it; if nobody is waiting on the process either, the exception
    propagates out of :meth:`Environment.run` (crashes are never silent).
    """

    __slots__ = ("generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str | None = None):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process requires a generator, got {generator!r}")
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Event | None = Initialize(env)
        self._target.callbacks.append(self._resume)

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        if self._target is None:
            raise SimulationError(f"cannot interrupt {self.name} before it starts")
        env = self.env
        interrupt_ev = Event(env)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev._defused = True
        # Detach from the event we were waiting on; deliver the interrupt.
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            if isinstance(target, Event):
                target._waiters = max(0, target._waiters - 1)
        interrupt_ev.callbacks = [self._resume]
        env._schedule(interrupt_ev)

    def _resume(self, event: Event) -> None:
        env = self.env
        self._target = None
        while True:
            try:
                if event._ok:
                    next_target = self.generator.send(event._value)
                else:
                    # Mark the failure as handled: it is being delivered.
                    event._defused = True
                    exc = event._value
                    next_target = self.generator.throw(exc)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                env._schedule(self)
                return
            except BaseException as exc:
                self._ok = False
                self._value = exc
                env._schedule(self)
                return

            if not isinstance(next_target, Event):
                event = Event(env)
                event._ok = False
                event._value = SimulationError(
                    f"process {self.name!r} yielded non-event {next_target!r}"
                )
                continue
            if next_target.env is not env:
                raise SimulationError("yielded event belongs to another environment")
            if next_target.processed or (
                next_target.triggered and next_target.callbacks is None
            ):
                # Already processed: resume immediately with its value.
                event = next_target
                continue
            if next_target.triggered:
                # Triggered but not yet processed; wait for processing.
                pass
            next_target.callbacks.append(self._resume)
            next_target._waiters += 1
            self._target = next_target
            return


class Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._count = 0
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("all events must share one environment")
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.processed or (ev.triggered and ev.callbacks is None):
                self._check(ev)
            elif ev.triggered:
                ev.callbacks.append(self._check)
            else:
                ev.callbacks.append(self._check)
        # A condition may have been satisfied synchronously above.

    def _collect(self) -> dict[Event, Any]:
        # Only *processed* events count as results: a Timeout is "triggered"
        # from birth (its fire time is fixed) but has not happened yet.
        return {ev: ev._value for ev in self.events if ev.processed}

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(Condition):
    """Fires when all constituent events fire (fails fast on first failure)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class AnyOf(Condition):
    """Fires as soon as any constituent event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Environment:
    """Holds the clock and the event queue; executes the simulation."""

    def __init__(self, initial_time: int = 0):
        self._now = int(initial_time)
        self._queue: list[tuple[int, int, Event]] = []
        self._eid = 0
        self._active = False
        # Engine-level observability: plain attributes so the hot path stays
        # cheap; run() mirrors deltas into `metrics` (a repro.obs
        # MetricRegistry, duck-typed to keep this module dependency-free)
        # when one is attached.
        self.events_processed = 0
        self.wall_time_s = 0.0
        self.metrics = None

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, int(delay), value)

    def process(self, generator: Generator, name: str | None = None) -> Process:
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------------
    def _schedule(self, event: Event, delay: int = 0) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, self._eid, event))

    def peek(self) -> int | None:
        """Time of the next scheduled event, or None if the queue is empty."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> None:
        """Process exactly one event."""
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for cb in callbacks:
                cb(event)
        elif not event._ok and not event._defused:
            # A failed event nobody waited for: crash loudly.
            raise event._value

    def run(self, until: int | Event | None = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be an absolute time (ns) or an :class:`Event`; in the
        latter case the event's value is returned (or its exception raised).
        """
        if self._active:
            raise SimulationError("run() is not reentrant")
        stop_event: Event | None = None
        deadline: int | None = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = int(until)
            if deadline < self._now:
                raise SimulationError(
                    f"until={deadline} is in the past (now={self._now})"
                )
        self._active = True
        wall_start = _time.perf_counter()
        events_start = self.events_processed
        now_start = self._now
        try:
            while self._queue:
                if stop_event is not None and stop_event.processed:
                    break
                if deadline is not None and self._queue[0][0] > deadline:
                    self._now = deadline
                    break
                self.step()
        finally:
            self._active = False
            wall = _time.perf_counter() - wall_start
            self.wall_time_s += wall
            if self.metrics is not None:
                m = self.metrics
                m.counter("sim_events_processed",
                          "events executed by the simulation engine").inc(
                    self.events_processed - events_start)
                m.counter("sim_time_ns",
                          "simulated nanoseconds elapsed across run() calls").inc(
                    self._now - now_start)
                m.counter("sim_wall_time_us",
                          "host wall-clock microseconds spent inside run()").inc(
                    int(wall * 1e6))
        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "run() ran out of events before the stop event triggered"
                )
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        if deadline is not None and not self._queue:
            self._now = max(self._now, deadline)
        return None
